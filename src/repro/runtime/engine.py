"""Pluggable execution engines for the simulated device.

The paper differentially tests many OpenCL implementations against each
other; this repository applies the same methodology to its *own* runtime.
An :class:`ExecutionEngine` turns a compiled program into per-work-item
coroutines; the :class:`~repro.runtime.device.Device` drives those coroutines
through the shared :class:`~repro.runtime.scheduler.WorkGroupScheduler`, race
detector and undefined-behaviour model, which are engine-independent.  Two
engines are registered:

``"reference"``
    The tree-walking coroutine interpreter
    (:class:`repro.runtime.interpreter.Interpreter`) -- simple, obviously
    correct, and the semantic baseline every other engine is differentially
    tested against.

``"compiled"``
    The compile-to-closures fast path (:mod:`repro.runtime.compiled`): the
    kernel AST is lowered once per launch into nested Python closures with
    pre-resolved builtins, pre-bound memory cells and slot-resolved
    variables.

The engine contract (see ENGINE.md) is strict: for any program, every engine
must produce the same :class:`~repro.runtime.device.KernelResult` (outputs,
final step count, race reports), raise the same error classes for timeout /
UB / crash outcomes, and yield the same
:class:`~repro.runtime.interpreter.SchedulerEvent` sequence at barriers and
atomics so that scheduling decisions are engine-independent.

Lifecycle: :meth:`ExecutionEngine.prepare` is called once per launch (after
global buffers are allocated), :meth:`PreparedLaunch.bind_group` once per
work-group (binding that group's local memory), and
:meth:`PreparedGroup.thread` once per work-item (producing the coroutine the
scheduler drives).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Generator, List, Optional, Union

from repro.kernel_lang import ast
from repro.runtime import memory
from repro.runtime.interpreter import (
    ExecutionLimits,
    Interpreter,
    SchedulerEvent,
    ThreadContext,
)

#: Engine used when callers do not ask for one.  The reference walker stays
#: the default so that every existing path keeps its exact baseline
#: behaviour; fast-path consumers opt in with ``engine="compiled"``.
DEFAULT_ENGINE = "reference"

ThreadCoroutine = Generator[SchedulerEvent, None, None]


class PreparedGroup(ABC):
    """A launch bound to one work-group's local memory."""

    @abstractmethod
    def thread(
        self,
        context: ThreadContext,
        access_hook: Optional[memory.AccessHook] = None,
    ) -> ThreadCoroutine:
        """The coroutine executing the kernel for one work-item."""


class PreparedLaunch(ABC):
    """A program prepared for one launch (global memory and limits bound)."""

    @abstractmethod
    def bind_group(self, local_memory: memory.LocalMemory) -> PreparedGroup:
        """Bind one work-group's local buffers."""


class ExecutionEngine(ABC):
    """Turns programs into schedulable work-item coroutines."""

    #: Registry name; also recorded in execution-result cache fingerprints.
    name: str = "?"

    @abstractmethod
    def prepare(
        self,
        program: ast.Program,
        global_memory: memory.GlobalMemory,
        limits: ExecutionLimits,
        comma_yields_zero: bool = False,
    ) -> PreparedLaunch:
        """Lower/prepare ``program`` for one launch."""


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_ENGINE_FACTORIES: Dict[str, Callable[[], ExecutionEngine]] = {}
_ENGINE_INSTANCES: Dict[str, ExecutionEngine] = {}


def register_engine(name: str, factory: Callable[[], ExecutionEngine]) -> None:
    """Register an engine under ``name`` (replacing any previous entry)."""
    _ENGINE_FACTORIES[name] = factory
    _ENGINE_INSTANCES.pop(name, None)


def available_engines() -> List[str]:
    """Registered engine names, sorted."""
    return sorted(_ENGINE_FACTORIES)


def get_engine(engine: Union[str, ExecutionEngine, None]) -> ExecutionEngine:
    """Resolve an engine name (or pass an instance through).

    Engines are stateless between launches, so one instance per registry
    entry is shared by all devices in the process.
    """
    if engine is None:
        engine = DEFAULT_ENGINE
    if isinstance(engine, ExecutionEngine):
        return engine
    try:
        factory = _ENGINE_FACTORIES[engine]
    except KeyError:
        raise KeyError(
            f"unknown execution engine {engine!r}; available: {available_engines()}"
        ) from None
    if engine not in _ENGINE_INSTANCES:
        _ENGINE_INSTANCES[engine] = factory()
    return _ENGINE_INSTANCES[engine]


# ---------------------------------------------------------------------------
# Reference engine: the tree-walking coroutine interpreter
# ---------------------------------------------------------------------------


class _ReferenceGroup(PreparedGroup):
    def __init__(self, launch: "_ReferenceLaunch", local_memory: memory.LocalMemory):
        self._launch = launch
        self._local_memory = local_memory

    def thread(
        self,
        context: ThreadContext,
        access_hook: Optional[memory.AccessHook] = None,
    ) -> ThreadCoroutine:
        launch = self._launch
        interpreter = Interpreter(
            launch.program,
            launch.global_memory,
            self._local_memory,
            launch.limits,
            access_hook=access_hook,
            comma_yields_zero=launch.comma_yields_zero,
        )
        return interpreter.run_thread(context)


class _ReferenceLaunch(PreparedLaunch):
    def __init__(
        self,
        program: ast.Program,
        global_memory: memory.GlobalMemory,
        limits: ExecutionLimits,
        comma_yields_zero: bool,
    ) -> None:
        self.program = program
        self.global_memory = global_memory
        self.limits = limits
        self.comma_yields_zero = comma_yields_zero

    def bind_group(self, local_memory: memory.LocalMemory) -> PreparedGroup:
        return _ReferenceGroup(self, local_memory)


class ReferenceEngine(ExecutionEngine):
    """The tree-walking interpreter behind the historical execution path."""

    name = "reference"

    def prepare(
        self,
        program: ast.Program,
        global_memory: memory.GlobalMemory,
        limits: ExecutionLimits,
        comma_yields_zero: bool = False,
    ) -> PreparedLaunch:
        return _ReferenceLaunch(program, global_memory, limits, comma_yields_zero)


def _make_compiled_engine() -> ExecutionEngine:
    # Imported lazily so the (large) lowering module is only paid for by
    # launches that actually select the compiled engine.
    from repro.runtime.compiled import CompiledEngine

    return CompiledEngine()


register_engine("reference", ReferenceEngine)
register_engine("compiled", _make_compiled_engine)


__all__ = [
    "DEFAULT_ENGINE",
    "ExecutionEngine",
    "PreparedLaunch",
    "PreparedGroup",
    "ReferenceEngine",
    "ThreadCoroutine",
    "register_engine",
    "available_engines",
    "get_engine",
]
