"""Work-group scheduler: barrier synchronisation and thread interleaving.

OpenCL 1.x provides no inter-group synchronisation (paper section 4.2), so
work-groups are executed one after another; *within* a group the scheduler
cooperatively interleaves the work-item coroutines produced by the
interpreter.  Threads only yield at barriers and atomic operations, which are
exactly the points at which the order of threads can influence intermediate
state.  Because the kernels the generator produces are deterministic by
construction, the final result must be independent of the interleaving -- the
``ScheduleOrder`` policies exist so tests and benchmarks can *check* that
claim by running the same kernel under different orders.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.runtime.errors import BarrierDivergenceError
from repro.runtime.interpreter import (
    ATOMIC_EVENT,
    BARRIER_EVENT,
    SchedulerEvent,
    ThreadContext,
)


class ScheduleOrder(enum.Enum):
    """Interleaving policies for threads within a work-group."""

    #: Run threads in ascending local-linear-id order at every scheduling point.
    ROUND_ROBIN = "round_robin"
    #: Run threads in descending id order.
    REVERSED = "reversed"
    #: Pick the next runnable thread pseudo-randomly (seeded, reproducible).
    RANDOM = "random"


@dataclass
class _ThreadSlot:
    context: ThreadContext
    coroutine: Generator[SchedulerEvent, None, None]
    finished: bool = False
    waiting_barrier: Optional[int] = None
    waiting_fence: Optional[str] = None


class WorkGroupScheduler:
    """Runs all work-items of a single work-group to completion."""

    def __init__(
        self,
        order: ScheduleOrder = ScheduleOrder.ROUND_ROBIN,
        seed: int = 0,
        barrier_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.order = order
        self._rng = random.Random(seed)
        self.barrier_hook = barrier_hook
        #: Number of barrier episodes completed (used by the race detector to
        #: delimit synchronisation epochs).
        self.barrier_epochs = 0

    def run(self, slots: List[_ThreadSlot]) -> None:
        """Drive the work-group until every thread has finished."""
        while True:
            runnable = [s for s in slots if not s.finished and s.waiting_barrier is None]
            if not runnable:
                waiting = [s for s in slots if s.waiting_barrier is not None]
                if not waiting:
                    return  # all threads finished
                self._release_barrier(slots, waiting)
                continue
            slot = self._pick(runnable)
            self._advance(slot)

    # -- internals -------------------------------------------------------

    def _pick(self, runnable: List[_ThreadSlot]) -> _ThreadSlot:
        if self.order is ScheduleOrder.ROUND_ROBIN:
            return min(runnable, key=lambda s: s.context.local_linear_id)
        if self.order is ScheduleOrder.REVERSED:
            return max(runnable, key=lambda s: s.context.local_linear_id)
        return self._rng.choice(runnable)

    def _advance(self, slot: _ThreadSlot) -> None:
        try:
            event = next(slot.coroutine)
        except StopIteration:
            slot.finished = True
            return
        if event.kind == BARRIER_EVENT:
            slot.waiting_barrier = event.barrier_site
            slot.waiting_fence = event.fence
        elif event.kind == ATOMIC_EVENT:
            # The atomic itself executes when the thread next resumes; the
            # yield simply provides an interleaving point.
            pass
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown scheduler event {event.kind!r}")

    def _release_barrier(self, slots: List[_ThreadSlot], waiting: List[_ThreadSlot]) -> None:
        # A barrier may only be released once *every* thread of the group has
        # arrived at it; a thread that already finished the kernel can never
        # arrive, so its group-mates waiting at a barrier is divergence.
        if len(waiting) != len(slots):
            raise BarrierDivergenceError(
                "some threads finished (or diverged) while others wait at a barrier"
            )
        sites = {s.waiting_barrier for s in waiting}
        if len(sites) != 1:
            raise BarrierDivergenceError(
                "threads of one work-group arrived at different barriers"
            )
        fence = waiting[0].waiting_fence or ""
        if self.barrier_hook is not None:
            self.barrier_hook(fence)
        self.barrier_epochs += 1
        for s in waiting:
            s.waiting_barrier = None
            s.waiting_fence = None


def make_slot(
    context: ThreadContext, coroutine: Generator[SchedulerEvent, None, None]
) -> _ThreadSlot:
    """Package a thread context and its interpreter coroutine for scheduling."""
    return _ThreadSlot(context, coroutine)


__all__ = ["ScheduleOrder", "WorkGroupScheduler", "make_slot"]
