"""Error taxonomy for the simulated runtime.

The fuzzing harness distinguishes the same outcome classes the paper does
(section 7.3): build failures, runtime crashes, timeouts, and wrong-code
results; undefined behaviour detected by the simulator is an additional class
that the real hardware of course cannot report but Oclgrind-style emulation
can.  Each class has a dedicated exception so the harness can classify by
type alone.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel_lang.semantics import UBKind


class KernelRuntimeError(Exception):
    """Base class for all errors raised while executing a kernel."""


class UndefinedBehaviourError(KernelRuntimeError):
    """The executing program performed an operation with undefined semantics.

    Programs produced by the generator must never raise this; doing so is a
    bug in the generator (and is tested as such).  Hand-written or mutated
    programs may legitimately trigger it, in which case the harness discards
    the test (a miscompilation verdict requires a well-defined program).
    """

    def __init__(self, kind: UBKind, message: str = ""):
        self.kind = kind
        detail = f": {message}" if message else ""
        super().__init__(f"undefined behaviour ({kind.value}){detail}")


class DataRaceError(UndefinedBehaviourError):
    """Two conflicting, unsynchronised accesses to a shared location."""

    def __init__(self, message: str = ""):
        super().__init__(UBKind.DATA_RACE, message)


class BarrierDivergenceError(UndefinedBehaviourError):
    """Threads of one work-group reached different barriers (or only some
    threads reached a barrier)."""

    def __init__(self, message: str = ""):
        super().__init__(UBKind.BARRIER_DIVERGENCE, message)


class RuntimeCrash(KernelRuntimeError):
    """The kernel (as compiled by a possibly-buggy configuration) crashed at
    runtime -- e.g. a segmentation fault such as the one Figure 2(c) provokes
    on Intel configurations 14-/15-."""

    def __init__(self, message: str = "runtime crash"):
        super().__init__(message)


class ExecutionTimeout(KernelRuntimeError):
    """The kernel exceeded its execution budget (the paper uses a 60 s
    wall-clock timeout; the simulator uses an interpretation-step budget)."""

    def __init__(self, steps: Optional[int] = None):
        self.steps = steps
        detail = f" after {steps} steps" if steps is not None else ""
        super().__init__(f"execution budget exhausted{detail}")


class BuildFailure(Exception):
    """The compiler rejected or failed to compile the kernel.

    Raised by the compiler driver (not the runtime), but defined alongside the
    runtime errors because the harness treats the two uniformly when
    classifying outcomes.
    """

    def __init__(self, message: str, internal: bool = False):
        self.internal = internal
        prefix = "internal compiler error" if internal else "build failure"
        super().__init__(f"{prefix}: {message}")


class CompileTimeout(BuildFailure):
    """Compilation did not finish within budget (Figure 1(e): Intel HD
    Graphics configurations loop forever compiling a 197-iteration loop;
    Figure 1(f): Xeon Phi takes >20 s on struct+barrier kernels)."""

    def __init__(self, message: str = "compilation did not terminate"):
        super().__init__(message, internal=False)


__all__ = [
    "KernelRuntimeError",
    "UndefinedBehaviourError",
    "DataRaceError",
    "BarrierDivergenceError",
    "RuntimeCrash",
    "ExecutionTimeout",
    "BuildFailure",
    "CompileTimeout",
]
