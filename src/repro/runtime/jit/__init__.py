"""Exec-based JIT execution backend (the ``"jit"`` engine).

Instead of interpreting the AST (reference engine) or calling one Python
closure per node (compiled engine), this backend emits real Python source
per kernel -- slot-local variables, inline budget ticks, calls into the
shared :mod:`repro.runtime.ops` value semantics, ``yield`` only in
barrier/atomic-reaching subtrees -- and lets CPython compile it once via
``exec`` (see :mod:`repro.runtime.jit.emitter`).  Scheduling, memory, race
detection and value semantics are shared with the other engines, which is
what makes all three differentially testable against each other.
"""

from repro.runtime.jit.emitter import JitEngine

__all__ = ["JitEngine"]
