"""Runtime support library for the exec-based JIT engine.

The emitter (:mod:`repro.runtime.jit.emitter`) generates straight-line
Python source per kernel; the hottest inner steps (budget ticks, scalar
arithmetic dispatch, variable reads) are inlined textually, while the
bulkier access shapes call the helpers below.  Every helper mirrors the
corresponding compiled-engine closure *exactly* -- same value semantics
(via :mod:`repro.runtime.ops`, the functions shared by all engines), same
access-hook behaviour, same undefined-behaviour raises with the same
messages -- so the three engines stay byte-identical under the
engine-vs-engine differential tests.

Helpers are deliberately free of step-budget ticking: ticks are emitted
inline at the call sites so the budget is debited at the same AST points
as the reference interpreter.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.kernel_lang import ast, builtins, types as ty, values as vals
from repro.kernel_lang.semantics import UBKind
from repro.runtime import memory, ops
from repro.runtime.errors import UndefinedBehaviourError

_SV = vals.ScalarValue
_PV = vals.PointerValue
_SHARED_SPACES = (ty.LOCAL, ty.GLOBAL)


# ---------------------------------------------------------------------------
# Yield analysis (shared with the compiled engine's lowering)
# ---------------------------------------------------------------------------


def yielding_functions(functions: Dict[str, ast.FunctionDecl]) -> FrozenSet[str]:
    """Names of user functions that can reach a scheduling point.

    A function yields control iff it contains a barrier, an atomic builtin
    call, or a call to a function that (transitively) does -- computed as a
    call-graph fixpoint.  Only these functions pay generator overhead.
    """
    calls: Dict[str, set] = {}
    syncing = set()
    for name, fn in functions.items():
        callees = set()
        for node in fn.body.walk():
            if isinstance(node, ast.BarrierStmt):
                syncing.add(name)
            elif isinstance(node, ast.Call):
                if node.name in builtins.ATOMIC_BUILTINS:
                    syncing.add(name)
                elif node.name in functions:
                    callees.add(node.name)
        calls[name] = callees
    changed = True
    while changed:
        changed = False
        for name, callees in calls.items():
            if name not in syncing and callees & syncing:
                syncing.add(name)
                changed = True
    return frozenset(syncing)


# ---------------------------------------------------------------------------
# Conversions
# ---------------------------------------------------------------------------


def conv_store(value: vals.Value, target: ty.Type) -> vals.Value:
    """``ops.convert_for_store`` with the integer fast path inlined
    (mirrors the compiled engine's per-type conversion closures).

    A scalar that already has the target type is returned as-is: scalar
    values are immutable, so sharing the object is indistinguishable from
    the fresh wrap the generic path would construct.
    """
    if value.__class__ is _SV:
        if value.type is target:
            return value
        if isinstance(target, ty.IntType):
            return ops.mk_scalar(target, target.wrap(value.value))
    return ops.convert_for_store(value, target)


# ---------------------------------------------------------------------------
# Buffer accesses (the ``ptr[idx]`` idiom -- the hottest generated shape)
# ---------------------------------------------------------------------------


def buffer_load(ptr: vals.Value, i: int, hook) -> vals.Value:
    """Everything of a ``ptr[idx]`` read after index evaluation and ticks
    (mirror of the compiled engine's ``run_buf_load`` tail)."""
    if ptr.__class__ is _PV:
        cell = ptr.cell
        if cell is None:
            raise UndefinedBehaviourError(UBKind.NULL_DEREFERENCE)
        path = ptr.path + (i,)
    else:
        lv = ops.pointer_target(ptr)  # raises: non-pointer value
        cell = lv.cell
        path = lv.path + (i,)
    if hook is not None and cell.address_space in _SHARED_SPACES:
        hook(cell, path, False, False)
    container = cell.value
    if container.__class__ is vals.ArrayValue and len(path) == 1:
        if not 0 <= i < container.type.length:
            raise UndefinedBehaviourError(
                UBKind.OUT_OF_BOUNDS,
                f"index {i} out of bounds for length {container.type.length}",
            )
        value = container.elements[i]
    else:
        value = memory._navigate(container, path)
    if value.__class__ is _SV:
        return value
    return ops.decay(value)


def buffer_ref(ptr: vals.Value, i: int) -> Tuple[memory.Cell, memory.Path]:
    """Pointer resolution of a ``ptr[idx] = value`` store (before the rhs is
    evaluated, exactly where the compiled engine resolves it)."""
    if ptr.__class__ is _PV:
        cell = ptr.cell
        if cell is None:
            raise UndefinedBehaviourError(UBKind.NULL_DEREFERENCE)
        return cell, ptr.path + (i,)
    lv = ops.pointer_target(ptr)  # raises: non-pointer
    return lv.cell, lv.path + (i,)


def buffer_store(cell: memory.Cell, path: memory.Path, i: int,
                 rhs: vals.Value, hook) -> None:
    """Conversion + hook + store of a ``ptr[idx] = value`` write (mirror of
    the compiled engine's ``run_buf_store`` tail)."""
    element_type = memory.type_at_path(cell.type, path)
    if rhs.__class__ is _SV and isinstance(element_type, ty.IntType):
        if rhs.type is element_type:
            new = rhs
        else:
            new = ops.mk_scalar(element_type, element_type.wrap(rhs.value))
    else:
        new = ops.convert_for_store(rhs, element_type)
    if hook is not None and cell.address_space in _SHARED_SPACES:
        hook(cell, path, True, False)
    container = cell.value
    if container.__class__ is vals.ArrayValue and len(path) == 1:
        if not 0 <= i < container.type.length:
            raise UndefinedBehaviourError(
                UBKind.OUT_OF_BOUNDS, f"index {i!r} out of bounds"
            )
        container.elements[i] = new
    else:
        cell.value = memory._store(container, path, new)
    cell.initialised = True


# ---------------------------------------------------------------------------
# Arrow accesses (``ptr->field`` -- the generated globals-struct idiom)
# ---------------------------------------------------------------------------


def member_load(ptr: vals.Value, fname: str, hook) -> vals.Value:
    """A ``ptr->field`` read: pointer target + member + hook + navigate,
    with the one-level struct shape inlined."""
    if ptr.__class__ is _PV:
        cell = ptr.cell
        if cell is None:
            raise UndefinedBehaviourError(UBKind.NULL_DEREFERENCE)
        path = ptr.path + (fname,)
    else:
        lv = ops.pointer_target(ptr)  # raises: non-pointer value
        cell = lv.cell
        path = lv.path + (fname,)
    if hook is not None and cell.address_space in _SHARED_SPACES:
        hook(cell, path, False, False)
    container = cell.value
    if (
        container.__class__ is vals.StructValue
        and len(path) == 1
        and fname in container.fields
    ):
        value = container.fields[fname]
    else:
        value = memory._navigate(container, path)
    if value.__class__ is _SV:
        return value
    return ops.decay(value)


def member_ref(ptr: vals.Value, fname: str) -> Tuple[memory.Cell, memory.Path]:
    """Pointer resolution of a ``ptr->field = value`` store (before the rhs
    is evaluated, exactly where the generic lvalue path resolves it)."""
    if ptr.__class__ is _PV:
        cell = ptr.cell
        if cell is None:
            raise UndefinedBehaviourError(UBKind.NULL_DEREFERENCE)
        return cell, ptr.path + (fname,)
    lv = ops.pointer_target(ptr)
    return lv.cell, lv.path + (fname,)


def member_store(cell: memory.Cell, path: memory.Path, fname: str,
                 rhs: vals.Value, hook) -> None:
    """Conversion + hook + store of a ``ptr->field = value`` write."""
    new = conv_store(rhs, memory.type_at_path(cell.type, path))
    if hook is not None and cell.address_space in _SHARED_SPACES:
        hook(cell, path, True, False)
    container = cell.value
    if (
        container.__class__ is vals.StructValue
        and len(path) == 1
        and fname in container.fields
    ):
        container.fields[fname] = new
    else:
        cell.value = memory._store(container, path, new)
    cell.initialised = True


# ---------------------------------------------------------------------------
# Local struct/vector accesses
# ---------------------------------------------------------------------------


def struct_load(cell: memory.Cell, fname: str) -> vals.Value:
    container = cell.value
    if container.__class__ is vals.StructValue and fname in container.fields:
        value = container.fields[fname]
    else:
        value = memory._navigate(container, (fname,))
    if value.__class__ is _SV:
        return value
    return ops.decay(value)


def vector_load(cell: memory.Cell, comp: int, element_type: ty.IntType,
                length: int) -> vals.Value:
    container = cell.value
    if container.__class__ is vals.VectorValue and 0 <= comp < length:
        return ops.mk_scalar(element_type, container.elements[comp])
    return memory._navigate(container, (comp,))


def field_store(cell: memory.Cell, fname: str, field_type: ty.Type,
                rhs: vals.Value) -> None:
    new = conv_store(rhs, field_type)
    container = cell.value
    if container.__class__ is vals.StructValue and fname in container.fields:
        container.fields[fname] = new
    else:
        cell.value = memory._store(container, (fname,), new)
    cell.initialised = True


def component_store(cell: memory.Cell, comp: int, element_type: ty.IntType,
                    rhs: vals.Value) -> None:
    new = conv_store(rhs, element_type)
    container = cell.value
    if container.__class__ is vals.VectorValue and new.__class__ is _SV:
        container.elements[comp] = element_type.wrap(new.value)
    else:
        cell.value = memory._store(container, (comp,), new)
    cell.initialised = True


# ---------------------------------------------------------------------------
# Builtins, atomics, vector literals, the comma defect
# ---------------------------------------------------------------------------


def builtin2(spec: builtins.BuiltinSpec, a: vals.Value, b: vals.Value) -> vals.Value:
    """Two-argument scalar-builtin fast path (the common arity)."""
    if a.__class__ is _SV and b.__class__ is _SV:
        scalar_type = a.type
        try:
            result = spec.fn(a.value, b.value, scalar_type)
        except builtins.BuiltinUndefined as exc:
            raise UndefinedBehaviourError(UBKind.BUILTIN_UNDEFINED, str(exc)) from exc
        return ops.mk_scalar(scalar_type, scalar_type.wrap(result))
    return ops.apply_scalar_builtin(spec, [a, b])


def builtin_n(spec: builtins.BuiltinSpec, args: List[vals.Value]) -> vals.Value:
    return ops.apply_scalar_builtin_fast(spec, args)


def atomic_finish(lv: memory.LValue, new_fn, operands: List[int], hook) -> vals.Value:
    """The post-scheduling-point half of an atomic builtin (mirror of the
    compiled engine's ``run_atomic`` tail; wrap-then-construct skips only
    the redundant range validation)."""
    old = ops.as_int(lv.read(hook, atomic=True))
    result_type = lv.type if isinstance(lv.type, ty.IntType) else ty.UINT
    new = new_fn(old, operands)
    lv.write(ops.mk_scalar(result_type, result_type.wrap(new)), hook, atomic=True)
    return ops.mk_scalar(result_type, result_type.wrap(old))


def vector_literal_finish(vtype: ty.VectorType, components: List[int]) -> vals.VectorValue:
    """Splat/length-check/construct once every component is accumulated."""
    if len(components) == 1:
        components = components * vtype.length
    if len(components) != vtype.length:
        raise UndefinedBehaviourError(
            UBKind.INVALID_FIELD,
            f"vector literal with {len(components)} components for {vtype}",
        )
    return vals.VectorValue(vtype, components)


def comma_zero(value: vals.Value) -> vals.Value:
    """Injected Oclgrind comma defect (Figure 2(f))."""
    if isinstance(value, vals.ScalarValue):
        return vals.ScalarValue(value.type, 0)
    return value


__all__ = [
    "yielding_functions",
    "conv_store",
    "buffer_load",
    "buffer_ref",
    "buffer_store",
    "member_load",
    "member_ref",
    "member_store",
    "struct_load",
    "vector_load",
    "field_store",
    "component_store",
    "builtin2",
    "builtin_n",
    "atomic_finish",
    "vector_literal_finish",
    "comma_zero",
]
