"""The exec-based JIT engine: kernel AST -> emitted Python source.

The compiled engine removed the interpreter's isinstance dispatch but still
pays one Python closure call per AST node a thread touches.  This engine
removes that too: it emits real Python source per kernel -- one function per
kernel-language function plus one thread entry -- compiles it once with
CPython's own compiler (``exec``), and runs the resulting code objects.

Emission strategy:

* **one Python local per declaration site** -- lexical scoping and shadowing
  are resolved at emit time into distinct Python locals holding
  :class:`~repro.runtime.memory.Cell` objects, so variable access is a
  LOAD_FAST plus an attribute read;
* **inline budget ticks** -- the step budget is debited by inline
  ``L.steps`` arithmetic at exactly the AST points the reference interpreter
  ticks (adjacent ticks are merged, which is observable only through the
  ``ExecutionTimeout`` payload -- pinned to ``max_steps + 1`` on every
  engine);
* **``yield`` only where scheduling can happen** -- the shared yield
  analysis (:func:`repro.runtime.jit.support.yielding_functions`) decides
  which functions become generators; within one, barriers/atomics are plain
  inline ``yield`` statements and calls to yielding callees are inline
  ``yield from`` expressions, so no extra generator frames exist at all;
* **shared semantics** -- operators, conversions, builtins, pointer targets
  and the hot access shapes call the same :mod:`repro.runtime.ops` /
  :mod:`repro.runtime.jit.support` functions the other engines use; memory
  accesses go through the same hook-firing paths, so the race detector sees
  an identical access stream.

Step counts, yields, UB raises and results are byte-identical to the
reference interpreter and the compiled engine -- property-tested over the
generated corpus in ``tests/test_engine.py``.

Lowering is launch-independent: the emitted module's global/constant buffer
pointers and its step counter bind per launch in :meth:`JitProgram.bind`
(local buffers per group), so one ``exec``-compiled module is reusable
across launches through the prepared-program cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernel_lang import ast, builtins, types as ty, values as vals
from repro.kernel_lang.semantics import UBKind
from repro.runtime import memory, ops
from repro.runtime.engine import (
    DEFAULT_MAX_STEPS,
    ExecutionEngine,
    PreparedBatch,
    PreparedGroup,
    PreparedLaunch,
    PreparedProgram,
)
from repro.runtime.errors import (
    ExecutionTimeout,
    RuntimeCrash,
    UndefinedBehaviourError,
)
from repro.runtime.interpreter import (
    ATOMIC_EVENT,
    BARRIER_EVENT,
    ExecutionLimits,
    SchedulerEvent,
    ThreadContext,
    _MAX_CALL_DEPTH,
)
from repro.runtime.jit import support

_SV = vals.ScalarValue

#: Shared atomic scheduling-point event (the scheduler only reads ``kind``).
_ATOMIC_EVENT = SchedulerEvent(ATOMIC_EVENT)

_INT0 = vals.ScalarValue(ty.INT, 0)
_INT1 = vals.ScalarValue(ty.INT, 1)

#: Names every emitted module resolves at run time.  Built once; per-program
#: constants are layered on top of a copy.
_BASE_NS = {
    "_SV": vals.ScalarValue,
    "_PV": vals.PointerValue,
    "_VV": vals.VectorValue,
    "_Cell": memory.Cell,
    "_Cu": memory.Cell.uninitialised,
    "_LV": memory.LValue,
    "_mk": ops.mk_scalar,
    "_decay": ops.decay,
    "_truthy": ops.truthy,
    "_as_int": ops.as_int,
    "_cfs": ops.convert_for_store,
    "_cast": ops.cast_value,
    "_unary": ops.unary,
    "_bin": ops.binary,
    "_ar": ops.scalar_arith,
    "_cst": ty.common_scalar_type,
    "_ptg": ops.pointer_target,
    "_deref": ops.deref_target,
    "_zero": vals.zero_value,
    "_zeroS": vals.StructValue.zero,
    "_zeroU": vals.UnionValue.zero,
    "_zeroA": vals.ArrayValue.zero,
    "_rvc": ops.rvalue_component,
    "_rvf": ops.rvalue_field,
    "_rvi": ops.rvalue_index,
    "_UB": UndefinedBehaviourError,
    "_UBK": UBKind,
    "_TO": ExecutionTimeout,
    "_RC": RuntimeCrash,
    "_I0": _INT0,
    "_I1": _INT1,
    "_EA": _ATOMIC_EVENT,
    "_bload": support.buffer_load,
    "_bref": support.buffer_ref,
    "_bstore": support.buffer_store,
    "_aload": support.member_load,
    "_aref": support.member_ref,
    "_astore": support.member_store,
    "_sload": support.struct_load,
    "_vload": support.vector_load,
    "_fstore": support.field_store,
    "_cstore": support.component_store,
    "_cv": support.conv_store,
    "_bi2": support.builtin2,
    "_biN": support.builtin_n,
    "_afin": support.atomic_finish,
    "_vfin": support.vector_literal_finish,
    "_cz": support.comma_zero,
}


def _raiser(kind: UBKind, message: str):
    def raise_it():
        raise UndefinedBehaviourError(kind, message)
    return raise_it


def _truthy_src(name: str) -> str:
    """Inline truthiness of a value temp (scalar fast path, UB fallback)."""
    return f"({name}.value != 0 if {name}.__class__ is _SV else _truthy({name}))"


class _FnState:
    """Per-emitted-function state: temp names, loop contexts, default return."""

    __slots__ = ("tmp", "loops", "default")

    def __init__(self, default: Optional[str]) -> None:
        self.tmp = 0
        #: Stack of ("for", update_chunk) / ("while", None) / ("swallow", None).
        self.loops: List[Tuple[str, Optional[List[Tuple[int, str]]]]] = []
        #: Python expression for the function's implicit/void return value,
        #: or None for the kernel thread (whose return value is discarded).
        self.default = default

    def fresh(self) -> str:
        name = f"t{self.tmp}"
        self.tmp += 1
        return name


class _FamilyEmission:
    """Shared emission state for one batched family of programs.

    One instance spans every :class:`_ModuleEmitter` of a
    :meth:`JitEngine.lower_batch` family: the constant pool, work-item spec
    table and function-name counter are family-global so the members'
    sources concatenate into one module (one ``compile`` + one ``exec``)
    without name collisions, and helper functions the base already emitted
    can be referenced -- not re-emitted -- by structurally identical
    variants.  A solo :meth:`JitEngine.lower` gets a private instance, so
    the single-program path is unchanged.
    """

    __slots__ = ("consts", "const_keys", "const_n", "wi_map", "wi_specs",
                 "fn_n", "base")

    def __init__(self) -> None:
        self.consts: Dict[str, object] = {}
        self.const_keys: Dict[object, str] = {}
        self.const_n = 0
        self.wi_map: Dict[Tuple[str, int], int] = {}
        self.wi_specs: List[Tuple[str, int]] = []
        self.fn_n = 0
        #: The family's first (base) emitter; set by ``lower_batch`` once the
        #: base module is emitted, consulted by later members for sharing.
        self.base: Optional["_ModuleEmitter"] = None


class _ModuleEmitter:
    """Emits one Python module of source for one program."""

    def __init__(
        self,
        program: ast.Program,
        comma_yields_zero: bool,
        max_steps: int,
        family: Optional[_FamilyEmission] = None,
        entry_suffix: str = "",
    ) -> None:
        self.program = program
        self.comma_yields_zero = comma_yields_zero
        self.max_steps = max_steps
        self._functions: Dict[str, ast.FunctionDecl] = {
            fn.name: fn for fn in program.functions if fn.body is not None
        }
        self._yielding = support.yielding_functions(self._functions)
        self._family = family if family is not None else _FamilyEmission()
        self._entry_suffix = entry_suffix
        base = self._family.base
        #: Functions whose lowering is reused from the family's base module:
        #: structurally equal there (transitively, per ``shareable_functions``)
        #: and actually emitted by the base.  Equal subgraphs have equal
        #: derived analyses (yielding status, ticks, scopes), so pointing the
        #: call sites at the base's code object is byte-identical.
        self._shared_fns: set = set()
        if base is not None:
            from repro.runtime.batch import shareable_functions

            self._shared_fns = {
                name
                for name in shareable_functions(base._functions, self._functions)
                if name in base._emitted_fns
            }
        self._fn_py: Dict[str, str] = {}
        for name in self._functions:
            if name in self._shared_fns:
                self._fn_py[name] = base._fn_py[name]
            else:
                self._fn_py[name] = f"_fn{self._family.fn_n}"
                self._family.fn_n += 1
        self._emitted_fns: set = set()
        self.out: List[Tuple[int, str]] = []
        self.consts: Dict[str, object] = self._family.consts
        self._const_keys: Dict[object, str] = self._family.const_keys
        self._wi_map: Dict[Tuple[str, int], int] = self._family.wi_map
        self.wi_specs: List[Tuple[str, int]] = self._family.wi_specs
        #: (ns_name, "global"|"local", param_name, param_type) resolved at
        #: bind / bind_group time.
        self.param_plan: List[Tuple[str, str, str, ty.PointerType]] = []
        self.kernel_yields = False
        #: Position/indent of the last emitted tick, for merge peepholing.
        self._last_tick: Optional[Tuple[int, int, int]] = None

    # -- output helpers --------------------------------------------------

    def w(self, ind: int, text: str) -> None:
        self.out.append((ind, text))
        self._last_tick = None

    def tick(self, ind: int, n: int) -> None:
        """Debit ``n`` budget steps; merges with an immediately preceding
        tick (adjacent lines, nothing observable in between)."""
        if self._last_tick is not None:
            pos, last_ind, last_n = self._last_tick
            if pos == len(self.out) and last_ind == ind:
                total = last_n + n
                self.out[pos - 2] = (ind, f"_s = L.steps = L.steps + {total}")
                self._last_tick = (pos, ind, total)
                return
        self.out.append((ind, f"_s = L.steps = L.steps + {n}"))
        # The reference walker increments one step at a time, so the first
        # crossing it can observe is exactly max_steps + 1; every engine
        # reports that value for byte-identical ExecutionTimeout payloads.
        self.out.append((ind, f"if _s > {self.max_steps}: raise _TO({self.max_steps + 1})"))
        self._last_tick = (len(self.out), ind, n)

    def capture(self) -> List[Tuple[int, str]]:
        """Swap in a fresh output buffer (for reusable line chunks)."""
        saved = self.out
        self.out = []
        self._last_tick = None
        return saved

    def release(self, saved: List[Tuple[int, str]]) -> List[Tuple[int, str]]:
        chunk = self.out
        self.out = saved
        self._last_tick = None
        return chunk

    def splice(self, chunk: List[Tuple[int, str]], ind: int) -> None:
        for rel_ind, text in chunk:
            self.w(ind + rel_ind, text)

    def suite(self, ind: int, start: int) -> None:
        """Ensure an indented suite emitted since ``start`` is non-empty."""
        if len(self.out) == start:
            self.w(ind, "pass")

    # -- constants -------------------------------------------------------

    def const(self, key: object, obj: object, prefix: str) -> str:
        name = self._const_keys.get(key)
        if name is None:
            name = f"_{prefix}{self._family.const_n}"
            self._family.const_n += 1
            self._const_keys[key] = name
            self.consts[name] = obj
        return name

    def type_const(self, t: ty.Type) -> str:
        return self.const(("t", id(t)), t, "t")

    def wrap_const(self, t: ty.IntType) -> str:
        return self.const(("w", id(t)), t.wrap, "w")

    def scalar_const(self, t: ty.IntType, raw: int) -> str:
        key = ("k", id(t), raw)
        if key not in self._const_keys:
            return self.const(key, vals.ScalarValue.wrap(t, raw), "k")
        return self._const_keys[key]

    def value_const(self, v: object) -> str:
        return self.const(("v", id(v)), v, "v")

    def spec_const(self, spec: builtins.BuiltinSpec) -> str:
        return self.const(("b", id(spec)), spec, "b")

    def wi_index(self, function: str, dimension: int) -> int:
        key = (function, dimension)
        if key not in self._wi_map:
            self._wi_map[key] = len(self.wi_specs)
            self.wi_specs.append(key)
        return self._wi_map[key]

    # -- static shape analysis (mirrors the other engines) ---------------

    def _is_pointer_expr(self, expr: ast.Expr, sc: "_Scope") -> bool:
        if isinstance(expr, ast.VarRef):
            entry = sc.lookup(expr.name)
            return entry is not None and isinstance(entry[1], ty.PointerType)
        return False

    def _is_lvalue_shaped(self, expr: ast.Expr, sc: "_Scope") -> bool:
        if isinstance(expr, (ast.VarRef, ast.Deref)):
            return True
        if isinstance(expr, ast.FieldAccess):
            if expr.arrow:
                return True
            return self._is_lvalue_shaped(expr.base, sc)
        if isinstance(expr, ast.IndexAccess):
            if self._is_pointer_expr(expr.base, sc):
                return True
            return self._is_lvalue_shaped(expr.base, sc)
        if isinstance(expr, ast.VectorComponent):
            return self._is_lvalue_shaped(expr.base, sc)
        return False

    def _raise_stmt(self, ind: int, ticks: int, kind: UBKind, message: str) -> None:
        if ticks:
            self.tick(ind, ticks)
        self.w(ind, f"raise _UB(_UBK.{kind.name}, {message!r})")

    # ==================================================================
    # Module assembly
    # ==================================================================

    def emit_module(self) -> str:
        # Only functions reachable from the kernel via calls are emitted
        # (mirroring the compiled engine's lazy function records); dead
        # helpers would only slow the one-off CPython compile down.
        reachable = self._reachable_functions()
        for name, decl in self._functions.items():
            # Family members skip helpers the base already emitted (their
            # call sites point at the base's function instead).
            if name in reachable and name not in self._shared_fns:
                self.emit_function(decl)
                self._emitted_fns.add(name)
        self.emit_thread()
        return "\n".join("    " * ind + text for ind, text in self.out)

    def _reachable_functions(self) -> set:
        seen: set = set()
        frontier = [self.program.kernel().body]
        while frontier:
            body = frontier.pop()
            for node in body.walk():
                if (
                    isinstance(node, ast.Call)
                    and node.name in self._functions
                    and node.name not in seen
                ):
                    seen.add(node.name)
                    frontier.append(self._functions[node.name].body)
        return seen

    def emit_function(self, decl: ast.FunctionDecl) -> None:
        pyname = self._fn_py[decl.name]
        sc = _Scope(None)
        args = []
        cells = []
        for i, p in enumerate(decl.params):
            arg = f"a{i}"
            var = sc.declare(p.name, p.type)
            args.append(arg)
            cells.append((arg, var, p))
        rtype = decl.return_type
        if isinstance(rtype, ty.VoidType):
            default = "_I0"
        elif isinstance(rtype, ty.IntType):
            # Falling off the end of a value-returning function: C leaves the
            # value unspecified; the model defines it as 0 (deterministic).
            default = self.value_const(vals.zero_value(rtype))
        else:
            default = f"_zero({self.type_const(rtype)})"
        fs = _FnState(default)
        head = ", ".join(["wi", "hook", "depth"] + args)
        self.w(0, f"def {pyname}({head}):")
        for arg, var, p in cells:
            self.w(1, f"{var} = _Cell({p.name!r}, {self.type_const(p.type)}, {arg}.copy())")
        self.emit_block(decl.body, sc, fs, 1)
        self.w(1, f"return {default}")
        self.w(0, "")

    def emit_thread(self) -> None:
        kernel = self.program.kernel()
        self.kernel_yields = self._body_yields(kernel.body)
        sc = _Scope(None)
        scalar_args: Dict[str, int] = dict(
            self.program.metadata.get("scalar_args", {})
        )
        fs = _FnState(None)
        sfx = self._entry_suffix
        self.w(0, f"def _thread{sfx}(wi, hook):")
        self.w(1, "depth = 0")
        for k, param in enumerate(kernel.params):
            var = sc.declare(param.name, param.type)
            tconst = self.type_const(param.type)
            if isinstance(param.type, ty.PointerType):
                space = param.type.address_space
                if space in (ty.GLOBAL, ty.CONSTANT):
                    ns_name = f"_p{k}{sfx}"
                    self.param_plan.append((ns_name, "global", param.name, param.type))
                    self.consts[ns_name] = None  # bound per launch
                    self.w(1, f"{var} = _Cell({param.name!r}, {tconst}, {ns_name})")
                elif space == ty.LOCAL:
                    ns_name = f"_p{k}{sfx}"
                    self.param_plan.append((ns_name, "local", param.name, param.type))
                    self.consts[ns_name] = None  # bound per work-group
                    self.w(1, f"{var} = _Cell({param.name!r}, {tconst}, {ns_name})")
                else:
                    fn = _raiser(
                        UBKind.NULL_DEREFERENCE,
                        f"kernel pointer parameter {param.name!r} in private space",
                    )
                    self.w(1, f"{self.value_const(fn)}()")
            elif isinstance(param.type, ty.IntType):
                raw = scalar_args.get(param.name, 0)
                value = self.scalar_const(param.type, raw)
                self.w(1, f"{var} = _Cell({param.name!r}, {tconst}, {value})")
            else:
                fn = _raiser(
                    UBKind.INVALID_FIELD,
                    f"unsupported kernel parameter type {param.type}",
                )
                self.w(1, f"{self.value_const(fn)}()")
        self.emit_block(kernel.body, sc, fs, 1)
        self.w(1, "return")
        self.w(0, "")
        if self.kernel_yields:
            self.w(0, f"_main{sfx} = _thread{sfx}")
        else:
            self.w(0, f"def _main{sfx}(wi, hook):")
            self.w(1, f"_thread{sfx}(wi, hook)")
            self.w(1, "return")
            self.w(1, "yield")
        self.w(0, "")

    def _body_yields(self, body: ast.Block) -> bool:
        for node in body.walk():
            if isinstance(node, ast.BarrierStmt):
                return True
            if isinstance(node, ast.Call):
                if node.name in builtins.ATOMIC_BUILTINS:
                    return True
                if node.name in self._yielding:
                    return True
        return False

    # ==================================================================
    # Statements
    # ==================================================================

    def emit_block(self, blk: ast.Block, sc: "_Scope", fs: _FnState, ind: int) -> None:
        inner = sc.child()
        start = len(self.out)
        for stmt in blk.statements:
            self.emit_stmt(stmt, inner, fs, ind)
        self.suite(ind, start)

    def emit_stmt(self, stmt: ast.Stmt, sc: "_Scope", fs: _FnState, ind: int) -> None:
        if isinstance(stmt, ast.Block):
            self.tick(ind, 1)
            self.emit_block(stmt, sc, fs, ind)
            return
        if isinstance(stmt, ast.DeclStmt):
            self.emit_decl(stmt, sc, fs, ind)
            return
        if isinstance(stmt, ast.AssignStmt):
            # The statement tick is folded into the assignment's entry tick
            # (they are contiguous: nothing observable happens in between).
            self.emit_assign(stmt.target, stmt.value, stmt.op, sc, fs, ind, extra=1)
            return
        if isinstance(stmt, ast.ExprStmt):
            self.tick(ind, 1)
            self.expr(stmt.expr, sc, fs, ind)
            return
        if isinstance(stmt, ast.IfStmt):
            self.tick(ind, 1)
            c = self.expr(stmt.cond, sc, fs, ind)
            self.w(ind, f"if {_truthy_src(c)}:")
            self.emit_block(stmt.then_block, sc, fs, ind + 1)
            if stmt.else_block is not None:
                self.w(ind, "else:")
                self.emit_block(stmt.else_block, sc, fs, ind + 1)
            return
        if isinstance(stmt, ast.ForStmt):
            self.emit_for(stmt, sc, fs, ind)
            return
        if isinstance(stmt, ast.WhileStmt):
            self.emit_while(stmt, sc, fs, ind)
            return
        if isinstance(stmt, ast.ReturnStmt):
            self.tick(ind, 1)
            if stmt.value is None:
                self.w(ind, "return" if fs.default is None else f"return {fs.default}")
                return
            v = self.expr(stmt.value, sc, fs, ind)
            self.w(ind, "return" if fs.default is None else f"return {v}")
            return
        if isinstance(stmt, ast.BreakStmt):
            self.tick(ind, 1)
            self._emit_break(fs, ind)
            return
        if isinstance(stmt, ast.ContinueStmt):
            self.tick(ind, 1)
            self._emit_continue(fs, ind)
            return
        if isinstance(stmt, ast.BarrierStmt):
            event = SchedulerEvent(
                BARRIER_EVENT, barrier_site=id(stmt), fence=stmt.fence
            )
            self.tick(ind, 1)
            self.w(ind, f"yield {self.const(('e', id(stmt)), event, 'e')}")
            return
        self._raise_stmt(
            ind, 1, UBKind.INVALID_FIELD, f"unknown statement {type(stmt).__name__}"
        )

    def _emit_break(self, fs: _FnState, ind: int) -> None:
        if not fs.loops:
            # Flow propagation with no enclosing loop ends the function
            # (kernel thread) or yields its default return value.
            self.w(ind, "return" if fs.default is None else f"return {fs.default}")
            return
        self.w(ind, "break")

    def _emit_continue(self, fs: _FnState, ind: int) -> None:
        if not fs.loops:
            self.w(ind, "return" if fs.default is None else f"return {fs.default}")
            return
        kind, update = fs.loops[-1]
        if kind == "swallow":
            # break/continue inside a for-loop's init/update statement abort
            # the rest of that statement and let the loop proceed.
            self.w(ind, "break")
            return
        if kind == "for" and update is not None:
            # The reference semantics run the update before re-testing the
            # condition; Python's continue jumps straight to the loop head,
            # so the update chunk is spliced in front of it.
            self.splice(update, ind)
        self.w(ind, "continue")

    def _contains_loose_flow(self, stmt: ast.Stmt) -> bool:
        """True when ``stmt`` contains a break/continue not bound to a loop
        nested inside ``stmt`` itself (only possible in for init/update)."""
        if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            return True
        if isinstance(stmt, (ast.ForStmt, ast.WhileStmt)):
            return False
        for child in stmt.children():
            if isinstance(child, ast.Stmt) and self._contains_loose_flow(child):
                return True
        return False

    def _emit_aux_stmt(self, stmt: ast.Stmt, sc: "_Scope", fs: _FnState, ind: int) -> None:
        """A for-loop init/update statement; break/continue inside it do not
        escape to the enclosing loop (mirroring the flow rules of the
        reference interpreter, which only propagates returns out of them)."""
        if self._contains_loose_flow(stmt):
            self.w(ind, "for _aux in (0,):")
            fs.loops.append(("swallow", None))
            start = len(self.out)
            self.emit_stmt(stmt, sc, fs, ind + 1)
            self.suite(ind + 1, start)
            fs.loops.pop()
        else:
            self.emit_stmt(stmt, sc, fs, ind)

    def emit_for(self, stmt: ast.ForStmt, sc: "_Scope", fs: _FnState, ind: int) -> None:
        inner = sc.child()
        self.tick(ind, 1)
        if stmt.init is not None:
            self._emit_aux_stmt(stmt.init, inner, fs, ind)
        update_chunk: Optional[List[Tuple[int, str]]] = None
        if stmt.update is not None:
            saved = self.capture()
            self._emit_aux_stmt(stmt.update, inner, fs, 0)
            update_chunk = self.release(saved)
        self.w(ind, "while True:")
        self.tick(ind + 1, 1)
        if stmt.cond is not None:
            c = self.expr(stmt.cond, inner, fs, ind + 1)
            self.w(ind + 1, f"if not {_truthy_src(c)}: break")
        fs.loops.append(("for", update_chunk))
        self.emit_block(stmt.body, inner, fs, ind + 1)
        fs.loops.pop()
        if update_chunk is not None:
            self.splice(update_chunk, ind + 1)

    def emit_while(self, stmt: ast.WhileStmt, sc: "_Scope", fs: _FnState, ind: int) -> None:
        self.tick(ind, 1)
        self.w(ind, "while True:")
        self.tick(ind + 1, 1)
        c = self.expr(stmt.cond, sc, fs, ind + 1)
        self.w(ind + 1, f"if not {_truthy_src(c)}: break")
        fs.loops.append(("while", None))
        self.emit_block(stmt.body, sc, fs, ind + 1)
        fs.loops.pop()

    def emit_decl(self, stmt: ast.DeclStmt, sc: "_Scope", fs: _FnState, ind: int) -> None:
        tconst = self.type_const(stmt.type)
        vol = ", volatile=True" if stmt.volatile else ""
        self.tick(ind, 1)
        if stmt.init is None:
            var = sc.declare(stmt.name, stmt.type, uninit=True)
            self.w(ind, f"{var} = _Cu({stmt.name!r}, {tconst}{vol})")
            return
        # The initialiser is emitted *before* the name is declared: like the
        # interpreter, a reference to the name inside its own initialiser
        # sees the outer binding, not the cell being initialised.
        value = self.emit_init_value(stmt.init, stmt.type, sc, fs, ind)
        var = sc.declare(stmt.name, stmt.type)
        self.w(ind, f"{var} = _Cell({stmt.name!r}, {tconst}, {value}{vol})")

    # ==================================================================
    # Initialisers
    # ==================================================================

    def emit_init_value(
        self, init: ast.Expr, target_type: ty.Type, sc: "_Scope", fs: _FnState, ind: int
    ) -> str:
        """Mirror of the interpreter's ``_eval_initialiser`` (no own tick)."""
        if isinstance(init, ast.InitList):
            return self.emit_initlist(init, target_type, sc, fs, ind)
        value = self.expr(init, sc, fs, ind)
        return self.emit_conv(value, target_type, fs, ind)

    def _conv_src(self, value: str, target: ty.Type) -> str:
        """Convert-for-store expression with the integer fast path inlined.

        A scalar already of the target type passes through unconverted --
        scalars are immutable, so sharing the object is indistinguishable
        from the fresh wrap the generic path would construct.
        """
        tconst = self.type_const(target)
        if isinstance(target, ty.IntType):
            wconst = self.wrap_const(target)
            return (
                f"({value} if {value}.type is {tconst} "
                f"else _mk({tconst}, {wconst}({value}.value))) "
                f"if {value}.__class__ is _SV else _cfs({value}, {tconst})"
            )
        return f"_cfs({value}, {tconst})"

    def emit_conv(self, value: str, target: ty.Type, fs: _FnState, ind: int) -> str:
        """Conversion at the merely-warm sites (declaration initialisers,
        call arguments): a support-helper call keeps the emitted module
        small, which is what bounds the one-off CPython compile."""
        t = fs.fresh()
        self.w(ind, f"{t} = _cv({value}, {self.type_const(target)})")
        return t

    def emit_initlist(
        self, init: ast.InitList, target_type: ty.Type, sc: "_Scope", fs: _FnState, ind: int
    ) -> str:
        if isinstance(target_type, ty.StructType):
            t = fs.fresh()
            self.w(ind, f"{t} = _zeroS({self.type_const(target_type)})")
            for fdecl, elem in zip(target_type.fields, init.elements):
                v = self.emit_init_value(elem, fdecl.type, sc, fs, ind)
                self.w(ind, f"{t}.set({fdecl.name!r}, {v})")
            return t
        if isinstance(target_type, ty.UnionType):
            # C semantics: a braced initialiser for a union initialises its
            # *first* member (Figure 2(a) depends on this).
            t = fs.fresh()
            self.w(ind, f"{t} = _zeroU({self.type_const(target_type)})")
            if init.elements:
                first = target_type.fields[0]
                v = self.emit_init_value(init.elements[0], first.type, sc, fs, ind)
                self.w(ind, f"{t}.set({first.name!r}, {v})")
            return t
        if isinstance(target_type, ty.ArrayType):
            t = fs.fresh()
            length = target_type.length
            self.w(ind, f"{t} = _zeroA({self.type_const(target_type)})")
            for i, elem in enumerate(init.elements[:length]):
                v = self.emit_init_value(elem, target_type.element, sc, fs, ind)
                self.w(ind, f"{t}.set({i}, {v})")
            if len(init.elements) > length:
                self._raise_stmt(
                    ind, 0, UBKind.OUT_OF_BOUNDS, "excess elements in array initialiser"
                )
            return t
        if isinstance(target_type, (ty.IntType, ty.VectorType)):
            if len(init.elements) != 1:
                self._raise_stmt(
                    ind, 0, UBKind.INVALID_FIELD, "scalar initialised with a list"
                )
                return "None"
            value = self.expr(init.elements[0], sc, fs, ind)
            return self.emit_conv(value, target_type, fs, ind)
        self._raise_stmt(
            ind, 0, UBKind.INVALID_FIELD,
            f"cannot initialise {target_type} from a list",
        )
        return "None"

    # ==================================================================
    # Assignments
    # ==================================================================

    def emit_assign(
        self,
        target: ast.Expr,
        value: ast.Expr,
        op: str,
        sc: "_Scope",
        fs: _FnState,
        ind: int,
        extra: int = 0,
    ) -> None:
        """The write of ``target op= value``; ``extra`` folds the caller's
        preceding statement/expression tick into the entry tick."""
        base_op = op[:-1] if op != "=" else None

        # Fast path: ``ptr[idx] = value`` (the CLsmith result-reporting idiom
        # and most generated stores).
        if (
            base_op is None
            and isinstance(target, ast.IndexAccess)
            and isinstance(target.base, ast.VarRef)
        ):
            entry = sc.lookup(target.base.name)
            if entry is not None and isinstance(entry[1], ty.PointerType):
                var = entry[0]
                self.tick(ind, 1 + extra)  # stmt/expr tick + lvalue entry tick
                ix = self.expr(target.index, sc, fs, ind)
                i = fs.fresh()
                self.w(ind, f"{i} = {ix}.value if {ix}.__class__ is _SV else _as_int({ix})")
                self.tick(ind, 2)  # pointer VarRef eval + lvalue ticks
                c, p = fs.fresh(), fs.fresh()
                self.w(ind, f"{c}, {p} = _bref({var}.value, {i})")
                rhs = self.expr(value, sc, fs, ind)
                self.w(ind, f"_bstore({c}, {p}, {i}, {rhs}, hook)")
                return

        # Fast path: ``ptr->field = value`` (the globals-struct idiom).
        if (
            base_op is None
            and isinstance(target, ast.FieldAccess)
            and target.arrow
            and isinstance(target.base, ast.VarRef)
        ):
            entry = sc.lookup(target.base.name)
            if entry is not None and isinstance(entry[1], ty.PointerType):
                var = entry[0]
                # stmt/expr tick + arrow lvalue tick + pointer VarRef ticks
                self.tick(ind, 3 + extra)
                c, p = fs.fresh(), fs.fresh()
                self.w(ind, f"{c}, {p} = _aref({var}.value, {target.field!r})")
                rhs = self.expr(value, sc, fs, ind)
                self.w(ind, f"_astore({c}, {p}, {target.field!r}, {rhs}, hook)")
                return

        # Fast path: ``var.field = value`` on a local struct.
        if (
            base_op is None
            and isinstance(target, ast.FieldAccess)
            and not target.arrow
            and isinstance(target.base, ast.VarRef)
        ):
            entry = sc.lookup(target.base.name)
            if (
                entry is not None
                and isinstance(entry[1], ty.StructType)
                and entry[1].has_field(target.field)
            ):
                var = entry[0]
                ftype = entry[1].field(target.field).type
                # stmt/expr tick + FieldAccess lvalue tick + VarRef lvalue tick
                self.tick(ind, 2 + extra)
                rhs = self.expr(value, sc, fs, ind)
                self.w(
                    ind,
                    f"_fstore({var}, {target.field!r}, {self.type_const(ftype)}, {rhs})",
                )
                return

        # Fast path: ``var.x = value`` on a local vector.
        if (
            base_op is None
            and isinstance(target, ast.VectorComponent)
            and isinstance(target.base, ast.VarRef)
        ):
            entry = sc.lookup(target.base.name)
            if (
                entry is not None
                and isinstance(entry[1], ty.VectorType)
                and 0 <= target.component < entry[1].length
            ):
                var = entry[0]
                etype = entry[1].element
                self.tick(ind, 2 + extra)
                rhs = self.expr(value, sc, fs, ind)
                self.w(
                    ind,
                    f"_cstore({var}, {target.component}, {self.type_const(etype)}, {rhs})",
                )
                return

        # Fast path: plain variable target (always a private cell; no hook).
        if isinstance(target, ast.VarRef):
            entry = sc.lookup(target.name)
            if entry is not None:
                var, decl_type = entry
                self.tick(ind, 1 + extra)  # stmt/expr tick + VarRef lvalue tick
                rhs = self.expr(value, sc, fs, ind)
                if base_op is not None:
                    r2 = fs.fresh()
                    self.w(ind, f"{r2} = _bin({base_op!r}, {var}.value, {rhs})")
                    rhs = r2
                self.w(ind, f"{var}.value = {self._conv_src(rhs, decl_type)}")
                # ``initialised`` is only ever False for no-initialiser
                # declarations, so only their assignments need the flip.
                if var in sc.root.maybe_uninit:
                    self.w(ind, f"{var}.initialised = True")
                return

        # Generic path: materialise the LValue.
        if extra:
            self.tick(ind, extra)
        lv, static = self.emit_lvalue(target, sc, fs, ind)
        rhs = self.expr(value, sc, fs, ind)
        if base_op is not None:
            r2 = fs.fresh()
            self.w(ind, f"{r2} = _bin({base_op!r}, {lv}.read(hook), {rhs})")
            rhs = r2
        if static is None:
            self.w(ind, f"{lv}.write(_cfs({rhs}, {lv}.type), hook)")
        else:
            self.w(ind, f"{lv}.write(_cv({rhs}, {self.type_const(static)}), hook)")

    # ==================================================================
    # L-values
    # ==================================================================

    def emit_lvalue(
        self, expr: ast.Expr, sc: "_Scope", fs: _FnState, ind: int
    ) -> Tuple[str, Optional[ty.Type]]:
        """Emit the LValue of ``expr`` (own tick included) plus its static
        type if known; mirrors the compiled engine's ``_compile_lvalue``."""
        if isinstance(expr, ast.VarRef):
            entry = sc.lookup(expr.name)
            if entry is None:
                self._raise_stmt(
                    ind, 1, UBKind.UNINITIALISED_READ, f"unknown variable {expr.name!r}"
                )
                return "None", None
            var, decl_type = entry
            self.tick(ind, 1)
            t = fs.fresh()
            self.w(ind, f"{t} = _LV({var})")
            return t, decl_type
        if isinstance(expr, ast.Deref):
            self.tick(ind, 1)
            o = self.expr(expr.operand, sc, fs, ind)
            t = fs.fresh()
            self.w(ind, f"{t} = _deref({o})")
            return t, None
        if isinstance(expr, ast.FieldAccess):
            if expr.arrow:
                self.tick(ind, 1)
                b = self.expr(expr.base, sc, fs, ind)
                t = fs.fresh()
                self.w(ind, f"{t} = _ptg({b}).member({expr.field!r})")
                return t, None
            self.tick(ind, 1)
            base, base_type = self.emit_lvalue(expr.base, sc, fs, ind)
            static = None
            if isinstance(base_type, (ty.StructType, ty.UnionType)) and base_type.has_field(
                expr.field
            ):
                static = base_type.field(expr.field).type
            t = fs.fresh()
            self.w(ind, f"{t} = {base}.member({expr.field!r})")
            return t, static
        if isinstance(expr, ast.IndexAccess):
            if self._is_pointer_expr(expr.base, sc):
                self.tick(ind, 1)
                ix = self.expr(expr.index, sc, fs, ind)
                i = fs.fresh()
                self.w(
                    ind,
                    f"{i} = {ix}.value if {ix}.__class__ is _SV else _as_int({ix})",
                )
                b = self.expr(expr.base, sc, fs, ind)
                t = fs.fresh()
                self.w(ind, f"if {b}.__class__ is _PV and {b}.cell is not None:")
                self.w(ind + 1, f"{t} = _LV({b}.cell, {b}.path + ({i},))")
                self.w(ind, "else:")
                self.w(ind + 1, f"{t} = _ptg({b}).index({i})")
                return t, None
            self.tick(ind, 1)
            ix = self.expr(expr.index, sc, fs, ind)
            i = fs.fresh()
            self.w(ind, f"{i} = _as_int({ix})")
            base, base_type = self.emit_lvalue(expr.base, sc, fs, ind)
            static = base_type.element if isinstance(base_type, ty.ArrayType) else None
            t = fs.fresh()
            self.w(ind, f"{t} = {base}.index({i})")
            return t, static
        if isinstance(expr, ast.VectorComponent):
            self.tick(ind, 1)
            base, base_type = self.emit_lvalue(expr.base, sc, fs, ind)
            static = base_type.element if isinstance(base_type, ty.VectorType) else None
            t = fs.fresh()
            self.w(ind, f"{t} = {base}.index({expr.component})")
            return t, static
        self._raise_stmt(
            ind, 1, UBKind.INVALID_FIELD,
            f"expression is not an lvalue: {type(expr).__name__}",
        )
        return "None", None

    # ==================================================================
    # Expressions
    # ==================================================================

    def expr(self, e: ast.Expr, sc: "_Scope", fs: _FnState, ind: int) -> str:
        """Emit the evaluation of ``e``; returns the temp/const holding it."""
        if isinstance(e, ast.IntLiteral):
            self.tick(ind, 1)
            return self.scalar_const(e.type, e.value)
        if isinstance(e, ast.VarRef):
            entry = sc.lookup(e.name)
            if entry is None:
                self._raise_stmt(
                    ind, 2, UBKind.UNINITIALISED_READ, f"unknown variable {e.name!r}"
                )
                return "None"
            var, decl_type = entry
            self.tick(ind, 2)  # the _eval tick plus the _eval_lvalue tick
            t = fs.fresh()
            if isinstance(decl_type, (ty.StructType, ty.UnionType, ty.ArrayType)):
                self.w(ind, f"{t} = {var}.value.copy()")
            else:
                self.w(ind, f"{t} = {var}.value")
            return t
        if isinstance(e, ast.WorkItemExpr):
            if e.function not in ast.WORKITEM_FUNCTIONS:  # pragma: no cover
                self._raise_stmt(
                    ind, 1, UBKind.INVALID_FIELD, f"unknown work-item fn {e.function}"
                )
                return "None"
            self.tick(ind, 1)
            t = fs.fresh()
            self.w(ind, f"{t} = wi[{self.wi_index(e.function, e.dimension)}]")
            return t
        if isinstance(e, ast.VectorLiteral):
            return self.emit_vector_literal(e, sc, fs, ind)
        if isinstance(e, ast.UnaryOp):
            self.tick(ind, 1)
            o = self.expr(e.operand, sc, fs, ind)
            t = fs.fresh()
            self.w(ind, f"{t} = _unary({e.op!r}, {o})")
            return t
        if isinstance(e, ast.AddressOf):
            self.tick(ind, 1)
            lv, _ = self.emit_lvalue(e.operand, sc, fs, ind)
            t = fs.fresh()
            self.w(ind, f"{t} = {lv}.as_pointer()")
            return t
        if isinstance(e, ast.Deref):
            self.tick(ind, 2)  # _eval tick + _eval_lvalue tick
            o = self.expr(e.operand, sc, fs, ind)
            t = fs.fresh()
            self.w(ind, f"{t} = _decay(_deref({o}).read(hook))")
            return t
        if isinstance(e, ast.BinaryOp):
            return self.emit_binary(e, sc, fs, ind)
        if isinstance(e, ast.Conditional):
            self.tick(ind, 1)
            c = self.expr(e.cond, sc, fs, ind)
            t = fs.fresh()
            self.w(ind, f"if {_truthy_src(c)}:")
            a = self.expr(e.then, sc, fs, ind + 1)
            self.w(ind + 1, f"{t} = {a}")
            self.w(ind, "else:")
            b = self.expr(e.otherwise, sc, fs, ind + 1)
            self.w(ind + 1, f"{t} = {b}")
            return t
        if isinstance(e, ast.Cast):
            self.tick(ind, 1)
            o = self.expr(e.operand, sc, fs, ind)
            t = fs.fresh()
            tconst = self.type_const(e.type)
            if isinstance(e.type, ty.IntType):
                wconst = self.wrap_const(e.type)
                self.w(
                    ind,
                    f"{t} = ({o} if {o}.type is {tconst} "
                    f"else _mk({tconst}, {wconst}({o}.value))) "
                    f"if {o}.__class__ is _SV else _cast({o}, {tconst})",
                )
            else:
                self.w(ind, f"{t} = _cast({o}, {tconst})")
            return t
        if isinstance(e, (ast.FieldAccess, ast.IndexAccess, ast.VectorComponent)):
            return self.emit_access(e, sc, fs, ind)
        if isinstance(e, ast.Call):
            return self.emit_call(e, sc, fs, ind)
        if isinstance(e, ast.AssignExpr):
            # The _eval tick is folded into the assignment's entry tick.
            self.emit_assign(e.target, e.value, e.op, sc, fs, ind, extra=1)
            return self.emit_target_reread(e.target, sc, fs, ind)
        if isinstance(e, ast.InitList):
            self._raise_stmt(
                ind, 1, UBKind.INVALID_FIELD, "initialiser list outside a declaration"
            )
            return "None"
        self._raise_stmt(
            ind, 1, UBKind.INVALID_FIELD, f"unknown expression {type(e).__name__}"
        )
        return "None"

    def emit_target_reread(
        self, target: ast.Expr, sc: "_Scope", fs: _FnState, ind: int
    ) -> str:
        """The value of an assignment expression: re-read its target."""
        if isinstance(target, ast.VarRef):
            entry = sc.lookup(target.name)
            if entry is not None:
                var, decl_type = entry
                self.tick(ind, 1)  # the VarRef lvalue tick
                t = fs.fresh()
                if isinstance(decl_type, (ty.StructType, ty.UnionType, ty.ArrayType)):
                    self.w(ind, f"{t} = {var}.value.copy()")
                else:
                    self.w(ind, f"{t} = {var}.value")
                return t
        lv, _ = self.emit_lvalue(target, sc, fs, ind)
        t = fs.fresh()
        self.w(ind, f"{t} = _decay({lv}.read(hook))")
        return t

    def emit_vector_literal(
        self, e: ast.VectorLiteral, sc: "_Scope", fs: _FnState, ind: int
    ) -> str:
        self.tick(ind, 1)
        acc = fs.fresh()
        self.w(ind, f"{acc} = []")
        for elem in e.elements:
            v = self.expr(elem, sc, fs, ind)
            self.w(ind, f"if {v}.__class__ is _VV: {acc}.extend({v}.elements)")
            self.w(ind, f"else: {acc}.append(_as_int({v}))")
        t = fs.fresh()
        self.w(ind, f"{t} = _vfin({self.type_const(e.type)}, {acc})")
        return t

    def emit_binary(self, e: ast.BinaryOp, sc: "_Scope", fs: _FnState, ind: int) -> str:
        op = e.op
        if op in ("&&", "||"):
            is_and = op == "&&"
            self.tick(ind, 1)
            left = self.expr(e.left, sc, fs, ind)
            t = fs.fresh()
            cond = _truthy_src(left) if is_and else f"not {_truthy_src(left)}"
            self.w(ind, f"if {cond}:")
            r = self.expr(e.right, sc, fs, ind + 1)
            self.w(ind + 1, f"{t} = _I1 if {_truthy_src(r)} else _I0")
            self.w(ind, "else:")
            self.w(ind + 1, f"{t} = _I0" if is_and else f"{t} = _I1")
            return t
        if op == ",":
            self.tick(ind, 1)
            self.expr(e.left, sc, fs, ind)
            r = self.expr(e.right, sc, fs, ind)
            if not self.comma_yields_zero:
                return r
            t = fs.fresh()
            # Injected Oclgrind defect (Figure 2(f)).
            self.w(ind, f"{t} = _cz({r})")
            return t
        self.tick(ind, 1)
        left = self.expr(e.left, sc, fs, ind)
        right = self.expr(e.right, sc, fs, ind)
        t = fs.fresh()
        self.w(ind, f"if {left}.__class__ is _SV and {right}.__class__ is _SV:")
        if op in ast.COMPARISON_OPERATORS:
            self.w(
                ind + 1,
                f"{t} = _I1 if {left}.value {op} {right}.value else _I0",
            )
        else:
            ct = fs.fresh()
            self.w(ind + 1, f"{ct} = _cst({left}.type, {right}.type)")
            self.w(
                ind + 1,
                f"{t} = _mk({ct}, _ar({op!r}, {left}.value, {right}.value, {ct}))",
            )
        self.w(ind, "else:")
        self.w(ind + 1, f"{t} = _bin({op!r}, {left}, {right})")
        return t

    def emit_access(self, e: ast.Expr, sc: "_Scope", fs: _FnState, ind: int) -> str:
        # Specialised: ``ptr[idx]`` reads (the hottest generated shape).
        if isinstance(e, ast.IndexAccess) and isinstance(e.base, ast.VarRef):
            entry = sc.lookup(e.base.name)
            if entry is not None and isinstance(entry[1], ty.PointerType):
                var = entry[0]
                self.tick(ind, 2)  # rvalue-access eval tick + lvalue tick
                ix = self.expr(e.index, sc, fs, ind)
                i = fs.fresh()
                self.w(
                    ind,
                    f"{i} = {ix}.value if {ix}.__class__ is _SV else _as_int({ix})",
                )
                self.tick(ind, 2)  # the pointer VarRef eval + lvalue ticks
                t = fs.fresh()
                self.w(ind, f"{t} = _bload({var}.value, {i}, hook)")
                return t
        # Specialised: ``ptr->field`` reads (the globals-struct idiom).
        if (
            isinstance(e, ast.FieldAccess)
            and e.arrow
            and isinstance(e.base, ast.VarRef)
        ):
            entry = sc.lookup(e.base.name)
            if entry is not None and isinstance(entry[1], ty.PointerType):
                # _eval tick + arrow lvalue tick + pointer VarRef eval ticks.
                self.tick(ind, 4)
                t = fs.fresh()
                self.w(ind, f"{t} = _aload({entry[0]}.value, {e.field!r}, hook)")
                return t
        # Specialised: ``var.field`` reads on a local struct.
        if (
            isinstance(e, ast.FieldAccess)
            and not e.arrow
            and isinstance(e.base, ast.VarRef)
        ):
            entry = sc.lookup(e.base.name)
            if entry is not None and isinstance(entry[1], ty.StructType):
                # _eval tick + FieldAccess lvalue tick + VarRef lvalue tick.
                self.tick(ind, 3)
                t = fs.fresh()
                self.w(ind, f"{t} = _sload({entry[0]}, {e.field!r})")
                return t
        # Specialised: ``var.x`` reads on a local vector.
        if isinstance(e, ast.VectorComponent) and isinstance(e.base, ast.VarRef):
            entry = sc.lookup(e.base.name)
            if entry is not None and isinstance(entry[1], ty.VectorType):
                self.tick(ind, 3)
                t = fs.fresh()
                vt = entry[1]
                self.w(
                    ind,
                    f"{t} = _vload({entry[0]}, {e.component}, "
                    f"{self.type_const(vt.element)}, {vt.length})",
                )
                return t
        if self._is_lvalue_shaped(e, sc):
            self.tick(ind, 1)  # the _eval tick; the lvalue ticks itself
            lv, _ = self.emit_lvalue(e, sc, fs, ind)
            t = fs.fresh()
            self.w(ind, f"{t} = _decay({lv}.read(hook))")
            return t
        return self.emit_rvalue_access(e, sc, fs, ind)

    def emit_rvalue_access(self, e: ast.Expr, sc: "_Scope", fs: _FnState, ind: int) -> str:
        """Field/index/component access into a temporary value."""
        if isinstance(e, ast.VectorComponent):
            self.tick(ind, 1)
            b = self.expr(e.base, sc, fs, ind)
            t = fs.fresh()
            self.w(ind, f"{t} = _rvc({b}, {e.component})")
            return t
        if isinstance(e, ast.FieldAccess):
            self.tick(ind, 1)
            b = self.expr(e.base, sc, fs, ind)
            t = fs.fresh()
            self.w(ind, f"{t} = _rvf({b}, {e.field!r})")
            return t
        if isinstance(e, ast.IndexAccess):
            self.tick(ind, 1)
            ix = self.expr(e.index, sc, fs, ind)
            i = fs.fresh()
            self.w(ind, f"{i} = _as_int({ix})")
            b = self.expr(e.base, sc, fs, ind)
            t = fs.fresh()
            self.w(ind, f"{t} = _rvi({b}, {i})")
            return t
        self._raise_stmt(  # pragma: no cover - defensive
            ind, 1, UBKind.INVALID_FIELD, f"unsupported rvalue access {type(e).__name__}"
        )
        return "None"

    # ==================================================================
    # Calls
    # ==================================================================

    def emit_call(self, e: ast.Call, sc: "_Scope", fs: _FnState, ind: int) -> str:
        name = e.name
        if name == "__trap":
            self.tick(ind, 1)
            self.w(ind, "raise _RC('injected runtime fault')")
            return "None"
        if name in builtins.ATOMIC_BUILTINS:
            return self.emit_atomic(e, sc, fs, ind)
        if name in builtins.SCALAR_BUILTINS:
            spec = self.spec_const(builtins.SCALAR_BUILTINS[name])
            self.tick(ind, 1)
            args = [self.expr(a, sc, fs, ind) for a in e.args]
            t = fs.fresh()
            if len(args) == 2:
                self.w(ind, f"{t} = _bi2({spec}, {args[0]}, {args[1]})")
            else:
                self.w(ind, f"{t} = _biN({spec}, [{', '.join(args)}])")
            return t
        return self.emit_user_call(e, sc, fs, ind)

    def emit_atomic(self, e: ast.Call, sc: "_Scope", fs: _FnState, ind: int) -> str:
        new_fn = self.const(("a", e.name), ops.ATOMIC_OPS[e.name], "a")
        self.tick(ind, 1)
        p = self.expr(e.args[0], sc, fs, ind)
        lv = fs.fresh()
        self.w(ind, f"{lv} = _ptg({p})")
        operands = []
        for a in e.args[1:]:
            v = self.expr(a, sc, fs, ind)
            iv = fs.fresh()
            self.w(ind, f"{iv} = _as_int({v})")
            operands.append(iv)
        # Scheduling point: the interleaving of atomics across threads is the
        # only non-determinism OpenCL 1.x permits in our kernels.
        self.w(ind, "yield _EA")
        t = fs.fresh()
        self.w(ind, f"{t} = _afin({lv}, {new_fn}, [{', '.join(operands)}], hook)")
        return t

    def emit_user_call(self, e: ast.Call, sc: "_Scope", fs: _FnState, ind: int) -> str:
        name = e.name
        decl = self._functions.get(name)
        self.tick(ind, 1)
        self.w(ind, f"if depth >= {_MAX_CALL_DEPTH}:")
        self.w(
            ind + 1,
            f"raise _UB(_UBK.{UBKind.OUT_OF_BOUNDS.name}, 'call depth limit exceeded')",
        )
        if decl is None:
            message = f"call to undefined function {name!r}"
            self.w(ind, f"raise _UB(_UBK.{UBKind.INVALID_FIELD.name}, {message!r})")
            return "None"
        if len(e.args) != len(decl.params):
            message = f"arity mismatch calling {name!r}"
            self.w(ind, f"raise _UB(_UBK.{UBKind.INVALID_FIELD.name}, {message!r})")
            return "None"
        converted = []
        for arg, param in zip(e.args, decl.params):
            a = self.expr(arg, sc, fs, ind)
            converted.append(self.emit_conv(a, param.type, fs, ind))
        callee = self._fn_py[name]
        call = f"{callee}(wi, hook, depth + 1{''.join(', ' + c for c in converted)})"
        t = fs.fresh()
        if name in self._yielding:
            self.w(ind, f"{t} = yield from {call}")
        else:
            self.w(ind, f"{t} = {call}")
        return t


# ---------------------------------------------------------------------------
# Emit-time lexical scopes
# ---------------------------------------------------------------------------


class _Scope:
    """Maps kernel-language names to (python local, declared type).

    One Python local per declaration *site*: shadowing declarations get
    distinct names, re-executed declarations (loop re-entry) reassign the
    same one -- exactly the compiled engine's slot discipline.
    """

    def __init__(self, parent: Optional["_Scope"]) -> None:
        self._parent = parent
        self._names: Dict[str, Tuple[str, ty.Type]] = {}
        self._root = parent._root if parent is not None else self
        if parent is None:
            self._count = 0
            #: Python names of variables declared without an initialiser;
            #: only their assignments need to flip ``Cell.initialised``.
            self.maybe_uninit: set = set()

    def declare(self, name: str, type_: ty.Type, uninit: bool = False) -> str:
        root = self._root
        pyname = f"v{root._count}"
        root._count += 1
        if uninit:
            root.maybe_uninit.add(pyname)
        self._names[name] = (pyname, type_)
        return pyname

    @property
    def root(self) -> "_Scope":
        return self._root

    def lookup(self, name: str) -> Optional[Tuple[str, ty.Type]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            entry = scope._names.get(name)
            if entry is not None:
                return entry
            scope = scope._parent
        return None

    def child(self) -> "_Scope":
        return _Scope(self)


# ---------------------------------------------------------------------------
# Program / launch / group wrappers
# ---------------------------------------------------------------------------


class JitProgram(PreparedProgram):
    """An exec-compiled kernel module, reusable across launches."""

    def __init__(
        self,
        program: ast.Program,
        namespace: Dict[str, object],
        limits: ExecutionLimits,
        param_plan: List[Tuple[str, str, str, ty.PointerType]],
        wi_specs: List[Tuple[str, int]],
        entry_name: str = "_main",
    ) -> None:
        self.program = program
        self._ns = namespace
        self._limits = limits
        self._param_plan = param_plan
        self._wi_specs = wi_specs
        self._entry = namespace[entry_name]

    def bind(self, global_memory: memory.GlobalMemory) -> "JitLaunch":
        # One active launch at a time: the emitted code ticks this module's
        # own counter, so binding resets it for the new launch.
        self._limits.steps = 0
        ns = self._ns
        for ns_name, kind, pname, ptype in self._param_plan:
            if kind == "global":
                ns[ns_name] = vals.PointerValue(
                    ptype, global_memory.cell(pname), ()
                )
        return JitLaunch(self)


class JitLaunch(PreparedLaunch):
    def __init__(self, lowered: JitProgram) -> None:
        self._lowered = lowered

    @property
    def steps(self) -> int:
        return self._lowered._limits.steps

    def bind_group(self, local_memory: memory.LocalMemory) -> "JitGroup":
        lowered = self._lowered
        ns = lowered._ns
        for ns_name, kind, pname, ptype in lowered._param_plan:
            if kind == "local":
                ns[ns_name] = vals.PointerValue(ptype, local_memory.cell(pname), ())
        return JitGroup(lowered)


class JitGroup(PreparedGroup):
    def __init__(self, lowered: JitProgram) -> None:
        self._lowered = lowered

    def thread(
        self,
        context: ThreadContext,
        access_hook: Optional[memory.AccessHook] = None,
    ):
        lowered = self._lowered
        # Work-item ids are always in size_t range: skip the redundant
        # range validation of ScalarValue.wrap.
        wi = [
            ops.mk_scalar(ty.SIZE_T, ops.workitem_raw(fn, dim, context))
            for fn, dim in lowered._wi_specs
        ]
        return lowered._entry(wi, access_hook)


class JitEngine(ExecutionEngine):
    """The exec-based JIT: emit Python source, let CPython compile it."""

    name = "jit"

    def lower(
        self,
        program: ast.Program,
        comma_yields_zero: bool = False,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> JitProgram:
        emitter = _ModuleEmitter(program, comma_yields_zero, max_steps)
        source = emitter.emit_module()
        limits = ExecutionLimits(max_steps=max_steps)
        namespace = dict(_BASE_NS)
        namespace.update(emitter.consts)
        namespace["L"] = limits
        code = compile(source, f"<jit:{program.kernel_name}>", "exec")
        exec(code, namespace)
        return JitProgram(
            program,
            namespace,
            limits,
            emitter.param_plan,
            emitter.wi_specs,
        )

    def lower_batch(
        self,
        programs: List[ast.Program],
        comma_yields_zero: bool = False,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> PreparedBatch:
        """One emitted module per family: shared helpers, per-member entries.

        Structurally identical members collapse first (EMI pruning routinely
        regenerates the same residue -- see
        :func:`repro.runtime.batch.dedup_members`), so each *distinct*
        program is emitted and CPython-compiled exactly once and duplicate
        members share its :class:`JitProgram`.  The distinct members' sources
        are emitted into one concatenated module with a family-global
        constant pool, work-item table and function namespace, paying one
        CPython ``compile`` + ``exec`` for the whole family.  Helper
        functions that are structurally identical to the base's
        (transitively -- see :func:`repro.runtime.batch.shareable_functions`)
        are emitted once and referenced by every member; each distinct
        member keeps its own ``_thread_v{j}``/``_main_v{j}`` entry and
        parameter slots.  The family shares one step counter (``L``), which
        every member's :meth:`JitProgram.bind` resets -- launches are
        strictly sequential, so batched results stay byte-identical to
        sequential lowering.
        """
        from repro.runtime.batch import dedup_members

        programs = list(programs)
        if len(programs) <= 1:
            return super().lower_batch(
                programs, comma_yields_zero=comma_yields_zero, max_steps=max_steps
            )
        distinct, slots = dedup_members(programs)
        if len(distinct) == 1:
            shared = self.lower(
                distinct[0], comma_yields_zero=comma_yields_zero, max_steps=max_steps
            )
            return PreparedBatch(programs, [shared] * len(programs))
        family = _FamilyEmission()
        emitters: List[_ModuleEmitter] = []
        sources: List[str] = []
        for j, program in enumerate(distinct):
            emitter = _ModuleEmitter(
                program,
                comma_yields_zero,
                max_steps,
                family=family,
                entry_suffix=f"_v{j}",
            )
            sources.append(emitter.emit_module())
            emitters.append(emitter)
            if family.base is None:
                family.base = emitter
        limits = ExecutionLimits(max_steps=max_steps)
        namespace = dict(_BASE_NS)
        namespace.update(family.consts)
        namespace["L"] = limits
        label = f"<jit-family:{distinct[0].kernel_name}x{len(distinct)}>"
        code = compile("\n".join(sources), label, "exec")
        exec(code, namespace)
        prepared = [
            JitProgram(
                program,
                namespace,
                limits,
                emitter.param_plan,
                family.wi_specs,
                entry_name=f"_main_v{j}",
            )
            for j, (program, emitter) in enumerate(zip(distinct, emitters))
        ]
        return PreparedBatch(programs, [prepared[slot] for slot in slots])


__all__ = ["JitEngine", "JitProgram", "JitLaunch", "JitGroup"]
