"""Simulated OpenCL runtime: NDRange execution, memory spaces, barriers,
atomics and race detection.

This package is the substrate substituting for the real OpenCL devices of the
paper's Table 1.  The entry point for running a kernel is
:func:`repro.runtime.device.run_program` (or the lower-level
:class:`repro.runtime.device.Device`).
"""

from repro.runtime.device import Device, KernelResult, run_program
from repro.runtime.errors import (
    BarrierDivergenceError,
    DataRaceError,
    ExecutionTimeout,
    KernelRuntimeError,
    RuntimeCrash,
    UndefinedBehaviourError,
)

__all__ = [
    "Device",
    "KernelResult",
    "run_program",
    "KernelRuntimeError",
    "UndefinedBehaviourError",
    "DataRaceError",
    "BarrierDivergenceError",
    "RuntimeCrash",
    "ExecutionTimeout",
]
