"""Simulated OpenCL runtime: NDRange execution, memory spaces, barriers,
atomics and race detection.

This package is the substrate substituting for the real OpenCL devices of the
paper's Table 1.  The entry point for running a kernel is
:func:`repro.runtime.device.run_program` (or the lower-level
:class:`repro.runtime.device.Device`).
"""

from repro.runtime.device import Device, KernelResult, run_program
from repro.runtime.engine import (
    DEFAULT_ENGINE,
    ExecutionEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.runtime.errors import (
    BarrierDivergenceError,
    DataRaceError,
    ExecutionTimeout,
    KernelRuntimeError,
    RuntimeCrash,
    UndefinedBehaviourError,
)

__all__ = [
    "Device",
    "KernelResult",
    "run_program",
    "DEFAULT_ENGINE",
    "ExecutionEngine",
    "available_engines",
    "get_engine",
    "register_engine",
    "KernelRuntimeError",
    "UndefinedBehaviourError",
    "DataRaceError",
    "BarrierDivergenceError",
    "RuntimeCrash",
    "ExecutionTimeout",
]
