"""Reproduction of "Many-Core Compiler Fuzzing" (Lidbury, Lascu, Chong,
Donaldson; PLDI 2015).

The package provides, as documented in DESIGN.md:

* :mod:`repro.kernel_lang` -- an OpenCL-C-like kernel language (types,
  values, AST, builtins, printer, static checks);
* :mod:`repro.runtime` -- a simulated OpenCL device (NDRange execution,
  memory spaces, barriers, atomics, race detection);
* :mod:`repro.compiler` -- an optimising compiler pipeline with an
  ``-cl-opt-disable`` equivalent;
* :mod:`repro.platforms` -- the paper's 21 (device, compiler) configurations
  with injected bug models and calibrated defect rates;
* :mod:`repro.generator` -- the CLsmith reproduction (six generation modes);
* :mod:`repro.emi` -- EMI testing via dead-by-construction code injection and
  the leaf/compound/lift pruning strategies;
* :mod:`repro.testing` -- differential and EMI harnesses, reliability
  classification, campaign orchestration, and the Figure 1/2 bug exemplars;
* :mod:`repro.orchestration` -- the sharded campaign execution engine
  (serialisable jobs, serial/process worker pools, bounded caches);
* :mod:`repro.reduction` -- automated test-case reduction: seeded
  deterministic delta debugging with UB-guarded interestingness predicates
  and campaign auto-reduction (REDUCTION.md);
* :mod:`repro.triage` -- bug triage: dedup bucketing by canonical
  fingerprints, culprit bisection over bug models and optimisation passes,
  and the persistent resumable campaign store (TRIAGE.md);
* :mod:`repro.workloads` -- miniature Parboil/Rodinia benchmarks (Table 2).
"""

__version__ = "0.1.0"

__all__ = [
    "kernel_lang",
    "runtime",
    "compiler",
    "platforms",
    "generator",
    "emi",
    "testing",
    "orchestration",
    "reduction",
    "triage",
    "workloads",
]
