"""Calibrated stochastic defect models.

The semantic bug models of :mod:`repro.platforms.bugmodels` reproduce the
*named* bugs of Figures 1 and 2.  The bulk statistics of the paper's Tables
3-5 (wrong-code percentages, build-failure/crash/timeout counts per
configuration and mode) additionally reflect many unreduced defects that the
authors did not analyse individually.  This module models that residue: each
configuration carries a :class:`DefectProfile` of per-outcome rates, with
multipliers keyed on the program features the paper identifies as relevant
(vectors, barriers, atomics, structs).

Triggering is *deterministic*: a defect fires iff a hash of the program
fingerprint, the configuration id, the optimisation setting and the defect
kind falls below the configured rate.  This keeps every campaign reproducible
while still behaving statistically like the paper's hardware.  Wrong-code
defects are applied as a genuine program transformation (the final result
store is perturbed by a hash-derived constant), so differential and EMI
detection operate through execution exactly as for the semantic models.

The rates below were set from Table 4 of the paper (per-configuration w%,
and build-failure / crash / timeout counts out of ~10 000 tests) and from the
initial-classification discussion in sections 6 and 7.1 for the
below-threshold configurations.  They are inputs to the simulation, not
measurements of it; EXPERIMENTS.md discusses the calibration in detail.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.compiler import analysis, rewrite
from repro.kernel_lang import ast, printer, types as ty
from repro.platforms.bugmodels import BugModel, Flags, MISCOMPILE
from repro.runtime.errors import BuildFailure, CompileTimeout


def hash_host_setup(h, program: ast.Program) -> None:
    """Feed the host-side setup (buffers, NDRange, scalar args) into ``h``.

    The single definition of "what besides the source decides an
    execution": :func:`program_fingerprint` (result caches, defect keying)
    and the triage bucketing fingerprint (:mod:`repro.triage.bucketing`)
    both hash it, so a new semantic field on ``BufferSpec``/``LaunchSpec``
    only needs adding here to reach every consumer.
    """
    for spec in program.buffers:
        h.update(
            f"{spec.name}:{spec.element_type.spelling()}:{spec.size}:"
            f"{spec.address_space}:{spec.init}:{spec.is_output};".encode()
        )
    h.update(str(program.launch.global_size).encode())
    h.update(str(program.launch.local_size).encode())
    h.update(str(sorted(program.metadata.get("scalar_args", {}).items())).encode())


def program_fingerprint(program: ast.Program) -> str:
    """A stable fingerprint of a program *and its host-side setup*.

    The printed kernel source alone is not enough: two programs can share
    their source but differ in buffer initialisation (e.g. the EMI dead-array
    inversion of section 7.4) and must not be conflated by result caches or
    defect keying.
    """
    h = hashlib.sha256()
    h.update(printer.print_program(program).encode())
    hash_host_setup(h, program)
    return h.hexdigest()


def execution_cache_key(
    program: ast.Program,
    execution_flags: Dict[str, bool],
    max_steps: int,
    engine: str = "reference",
) -> Tuple[str, Tuple[Tuple[str, bool], ...], int, str]:
    """Cache key for the execution result of a *compiled* program.

    Execution is fully determined by the post-compilation program, the defect
    flags the bug models attached to it, the step budget (which decides
    whether a long-running kernel passes or times out) and the execution
    engine, so (:func:`program_fingerprint`, sorted flags, ``max_steps``,
    ``engine``) keys the shared result caches of the differential and EMI
    harnesses (see :mod:`repro.orchestration.cache`).  Including the budget
    matters because one cache may serve harnesses with different
    ``max_steps``; including the engine keeps engine-vs-engine differential
    runs honest -- a shared cache must never satisfy a ``"compiled"`` lookup
    with a ``"reference"`` execution (or vice versa), even though the two
    are property-tested to agree.
    """
    return (
        program_fingerprint(program),
        tuple(sorted(execution_flags.items())),
        max_steps,
        engine,
    )


def _uniform(fingerprint: str, *salt: object) -> float:
    """Deterministic pseudo-uniform draw in [0, 1) keyed on program + salt."""
    h = hashlib.sha256()
    h.update(fingerprint.encode())
    for s in salt:
        h.update(str(s).encode())
        h.update(b"|")
    return int.from_bytes(h.digest()[:8], "big") / float(1 << 64)


@dataclass
class OutcomeRates:
    """Defect rates for one optimisation setting of one configuration."""

    wrong_code: float = 0.0
    build_failure: float = 0.0
    runtime_crash: float = 0.0
    timeout: float = 0.0
    #: Multipliers applied to ``wrong_code`` / ``runtime_crash`` /
    #: ``build_failure`` when the program uses the given feature.
    vector_factor: float = 1.0
    barrier_factor: float = 1.0
    atomic_factor: float = 1.0
    struct_factor: float = 1.0
    #: Multiplier applied to the *crash* rate (only) for barrier-using
    #: programs; Table 4 shows configurations 14- and 15- crashing massively
    #: more often on the barrier-heavy modes.
    crash_barrier_factor: float = 1.0

    def feature_multiplier(self, program: ast.Program) -> float:
        m = 1.0
        if analysis.uses_vectors(program):
            m *= self.vector_factor
        if analysis.uses_barriers(program):
            m *= self.barrier_factor
        if analysis.uses_atomics(program):
            m *= self.atomic_factor
        if analysis.uses_structs(program):
            m *= self.struct_factor
        return m


@dataclass
class DefectProfile:
    """Per-configuration stochastic defect rates (opt- and opt+)."""

    opt_off: OutcomeRates = field(default_factory=OutcomeRates)
    opt_on: OutcomeRates = field(default_factory=OutcomeRates)
    #: Message used for stochastic build failures (vendor flavour).
    build_failure_message: str = "internal error during kernel build"
    #: When True, wrong-code defects key on the EMI *base* fingerprint (if the
    #: program records one), so all EMI variants of a base miscompile
    #: identically and EMI testing cannot observe a mismatch.  This models
    #: configurations whose miscompilations are not optimisation-sensitive:
    #: the paper found EMI ineffective on configuration 9 and on Oclgrind
    #: despite their high differential-testing wrong-code rates (section 7.4).
    stable_wrong_code: bool = False

    def rates(self, optimisations: bool) -> OutcomeRates:
        return self.opt_on if optimisations else self.opt_off


class StochasticDefectModel(BugModel):
    """A bug model driven by a :class:`DefectProfile`.

    The model decides, per program, which (if any) defect class fires, in the
    priority order build-failure > timeout > crash > wrong-code (a program
    that fails to build can exhibit nothing else).
    """

    stage = MISCOMPILE
    name = "calibrated-defects"
    description = "stochastic defects calibrated against Tables 3-5"

    def __init__(self, profile: DefectProfile, config_id: int) -> None:
        self.profile = profile
        self.config_id = config_id

    # The stochastic model participates in both the front-end stage (build
    # failures) and the miscompile stage; the driver calls ``frontend_check``
    # for every bug model with ``stage == "frontend"`` only, so the
    # DeviceConfig wires an auxiliary front-end shim (see registry).

    def matches(self, program: ast.Program, optimisations: bool, config) -> bool:
        return True

    def apply(
        self, program: ast.Program, optimisations: bool, config
    ) -> Tuple[ast.Program, Flags]:
        rates = self.profile.rates(optimisations)
        fingerprint = program_fingerprint(program)
        multiplier = rates.feature_multiplier(program)
        wrong_key = fingerprint
        if self.profile.stable_wrong_code:
            wrong_key = str(program.metadata.get("emi_base_fingerprint", fingerprint))

        crash_rate = rates.runtime_crash
        if analysis.uses_barriers(program):
            crash_rate *= rates.crash_barrier_factor

        if self._fires(fingerprint, optimisations, "timeout", rates.timeout):
            return program, {"force_timeout": True}
        if self._fires(fingerprint, optimisations, "crash", crash_rate):
            return program, {"force_runtime_crash": True}
        if self._fires(
            wrong_key, optimisations, "wrong", rates.wrong_code * multiplier
        ):
            return self._miscompile(program, wrong_key), {}
        return program, {}

    def check_build(self, program: ast.Program, optimisations: bool) -> None:
        """Raise BuildFailure if the stochastic build-failure defect fires."""
        rates = self.profile.rates(optimisations)
        fingerprint = program_fingerprint(program)
        rate = rates.build_failure
        if analysis.uses_barriers(program):
            rate *= rates.barrier_factor
        if analysis.uses_vectors(program):
            rate *= rates.vector_factor
        if self._fires(fingerprint, optimisations, "build", min(rate, 1.0)):
            raise BuildFailure(self.profile.build_failure_message)

    # ------------------------------------------------------------------

    def _fires(self, fingerprint: str, optimisations: bool, kind: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        return _uniform(fingerprint, self.config_id, optimisations, kind) < min(rate, 1.0)

    def _miscompile(self, program: ast.Program, fingerprint: str) -> ast.Program:
        """Perturb the kernel's result store by a hash-derived constant."""
        delta = (int(fingerprint[:8], 16) % 0xFFFF) + 1
        state = {"done": False}

        def stmt_fn(stmt: ast.Stmt):
            if state["done"]:
                return None
            if (
                isinstance(stmt, ast.AssignStmt)
                and isinstance(stmt.target, ast.IndexAccess)
                and isinstance(stmt.target.base, ast.VarRef)
                and stmt.target.base.name == "out"
            ):
                state["done"] = True
                return [
                    ast.AssignStmt(
                        stmt.target.clone(),
                        ast.BinaryOp("^", stmt.value.clone(), ast.IntLiteral(delta, ty.ULONG)),
                        stmt.op,
                    )
                ]
            return None

        transformed = rewrite.rewrite_program(program, stmt_fn=stmt_fn)
        if not state["done"]:
            # No recognisable result store: fall back to flagging a crash so
            # that the defect remains observable.
            return transformed
        return transformed


class StochasticBuildFailureShim(BugModel):
    """Front-end adapter exposing the stochastic build-failure channel."""

    stage = "frontend"
    name = "calibrated-build-failures"
    description = "stochastic build failures calibrated against Table 4"

    def __init__(self, model: StochasticDefectModel) -> None:
        self.model = model

    def matches(self, program: ast.Program, optimisations: bool, config) -> bool:
        try:
            self.model.check_build(program, optimisations)
        except BuildFailure:
            return True
        return False

    def raise_failure(self, program: ast.Program, optimisations: bool, config) -> None:
        self.model.check_build(program, optimisations)
        raise BuildFailure(self.model.profile.build_failure_message)  # pragma: no cover


# ---------------------------------------------------------------------------
# Calibration table
# ---------------------------------------------------------------------------

#: Defect profiles per configuration id.  Rates are fractions of tests.
#: They approximate Table 4 (above-threshold configurations) and the
#: initial-classification failure rates of section 7.1 (below-threshold
#: configurations; these must exceed 25 % in aggregate).
DEFECT_PROFILES: Dict[int, DefectProfile] = {
    # NVIDIA GPUs (1-4): low wrong-code rate, slightly higher with opts on;
    # build failures ~4 % with opts off only (fixed in driver 346.47 -> 3, 4
    # get a lower rate); few crashes.
    1: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.0012, build_failure=0.039, runtime_crash=0.04,
                             timeout=0.02),
        opt_on=OutcomeRates(wrong_code=0.0028, build_failure=0.004, runtime_crash=0.055,
                            timeout=0.001),
        build_failure_message="Wrong type for attribute zeroext",
    ),
    2: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.0012, build_failure=0.039, runtime_crash=0.042,
                             timeout=0.02),
        opt_on=OutcomeRates(wrong_code=0.0028, build_failure=0.004, runtime_crash=0.056,
                            timeout=0.001),
        build_failure_message="Wrong type for attribute signext",
    ),
    3: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.0013, build_failure=0.039, runtime_crash=0.06,
                             timeout=0.0),
        opt_on=OutcomeRates(wrong_code=0.003, build_failure=0.004, runtime_crash=0.055,
                            timeout=0.0),
        build_failure_message="Attributes after last parameter!",
    ),
    4: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.0013, build_failure=0.039, runtime_crash=0.058,
                             timeout=0.0),
        opt_on=OutcomeRates(wrong_code=0.0027, build_failure=0.004, runtime_crash=0.054,
                            timeout=0.0),
        build_failure_message="Attributes after last parameter!",
    ),
    # AMD GPUs (5, 6): below threshold -- frequent machine crashes and
    # struct-related wrong code (the char-first bug covers the semantics;
    # the residue is modelled as crashes).
    5: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.05, build_failure=0.04, runtime_crash=0.22,
                             timeout=0.02, struct_factor=2.0),
        opt_on=OutcomeRates(wrong_code=0.12, build_failure=0.05, runtime_crash=0.22,
                            timeout=0.02, struct_factor=2.0),
        build_failure_message="internal error: unsupported irreducible control flow",
    ),
    6: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.05, build_failure=0.04, runtime_crash=0.24,
                             timeout=0.02, struct_factor=2.0),
        opt_on=OutcomeRates(wrong_code=0.12, build_failure=0.05, runtime_crash=0.24,
                            timeout=0.02, struct_factor=2.0),
        build_failure_message="internal error: unsupported irreducible control flow",
    ),
    # Intel GPUs (7, 8): below threshold -- machine crashes and compile hangs.
    7: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.06, build_failure=0.05, runtime_crash=0.25,
                             timeout=0.08, struct_factor=1.6),
        opt_on=OutcomeRates(wrong_code=0.07, build_failure=0.05, runtime_crash=0.25,
                            timeout=0.08, struct_factor=1.6),
        build_failure_message="fcl build failed: internal error",
    ),
    8: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.06, build_failure=0.05, runtime_crash=0.26,
                             timeout=0.1, struct_factor=1.6),
        opt_on=OutcomeRates(wrong_code=0.07, build_failure=0.05, runtime_crash=0.26,
                            timeout=0.1, struct_factor=1.6),
        build_failure_message="fcl build failed: internal error",
    ),
    # Anonymous GPU, newest driver (9): above threshold, but a consistently
    # high wrong-code rate (~1.6-2.3 %) and many timeouts; no build failures
    # (the vendor fuzzes for those in-house, section 7.3).
    9: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.019, build_failure=0.0, runtime_crash=0.04,
                             timeout=0.13),
        opt_on=OutcomeRates(wrong_code=0.017, build_failure=0.0, runtime_crash=0.027,
                            timeout=0.1),
        stable_wrong_code=True,
    ),
    # Anonymous GPU, older drivers (10, 11): below threshold -- struct copy
    # miscompilation plus a high residual wrong-code/crash rate.
    10: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.22, build_failure=0.03, runtime_crash=0.1,
                             timeout=0.05, struct_factor=1.5),
        opt_on=OutcomeRates(wrong_code=0.18, build_failure=0.03, runtime_crash=0.1,
                            timeout=0.05, struct_factor=1.5),
    ),
    11: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.24, build_failure=0.03, runtime_crash=0.1,
                             timeout=0.05, struct_factor=1.5),
        opt_on=OutcomeRates(wrong_code=0.2, build_failure=0.03, runtime_crash=0.1,
                            timeout=0.05, struct_factor=1.5),
    ),
    # Intel i7 CPUs (12, 13): wrong code mostly with opts OFF and barriers
    # (Figure 2(c)/(d) class); build failures in vectorizer passes with opts on.
    12: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.002, build_failure=0.001, runtime_crash=0.085,
                             timeout=0.028, barrier_factor=9.0),
        opt_on=OutcomeRates(wrong_code=0.0012, build_failure=0.005, runtime_crash=0.06,
                            timeout=0.14, barrier_factor=2.0),
        build_failure_message="Both operands to ICmp instruction are not of the same type!",
    ),
    13: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.002, build_failure=0.001, runtime_crash=0.085,
                             timeout=0.029, barrier_factor=9.0),
        opt_on=OutcomeRates(wrong_code=0.0012, build_failure=0.005, runtime_crash=0.06,
                            timeout=0.14, barrier_factor=2.0),
        build_failure_message="Call parameter type does not match function signature!",
    ),
    # Intel i5 CPU (14): wrong code mostly with opts ON; very high crash rate
    # for barrier-heavy kernels with opts off.
    14: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.002, build_failure=0.004, runtime_crash=0.01,
                             timeout=0.028, barrier_factor=14.0, vector_factor=2.0,
                             crash_barrier_factor=35.0),
        opt_on=OutcomeRates(wrong_code=0.011, build_failure=0.008, runtime_crash=0.03,
                            timeout=0.045, barrier_factor=1.3, vector_factor=1.5),
        build_failure_message="error in Intel OpenCL Vectorizer pass",
    ),
    # Intel Xeon CPU (15): very high build-failure rate (int/size_t rejection)
    # plus barrier-related crashes with opts off.
    15: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.0015, build_failure=0.14, runtime_crash=0.01,
                             timeout=0.015, barrier_factor=14.0, vector_factor=1.8,
                             crash_barrier_factor=38.0),
        opt_on=OutcomeRates(wrong_code=0.009, build_failure=0.14, runtime_crash=0.04,
                            timeout=0.11, barrier_factor=1.5, vector_factor=1.8),
        build_failure_message="invalid operands to binary expression ('int' and 'size_t')",
    ),
    # AMD CPU (16): below threshold (struct bug plus residue).
    16: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.1, build_failure=0.05, runtime_crash=0.15,
                             timeout=0.03, struct_factor=2.0),
        opt_on=OutcomeRates(wrong_code=0.16, build_failure=0.05, runtime_crash=0.15,
                            timeout=0.03, struct_factor=2.0),
    ),
    # Anonymous CPU (17): below threshold (struct+barrier bug plus residue).
    17: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.18, build_failure=0.06, runtime_crash=0.08,
                             timeout=0.03, struct_factor=1.6),
        opt_on=OutcomeRates(wrong_code=0.18, build_failure=0.06, runtime_crash=0.08,
                            timeout=0.03, struct_factor=1.6),
    ),
    # Xeon Phi (18): below threshold because of prohibitively slow compilation
    # (modelled as timeouts) for struct-heavy kernels.
    18: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.01, build_failure=0.04, runtime_crash=0.05,
                             timeout=0.3, struct_factor=1.5),
        opt_on=OutcomeRates(wrong_code=0.01, build_failure=0.04, runtime_crash=0.05,
                            timeout=0.45, struct_factor=1.5),
    ),
    # Oclgrind (19): the comma bug (semantic model) dominates; a small
    # additional vector-related wrong-code rate; no build failures; slow
    # (frequent timeouts); optimisation setting has no effect.
    19: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.012, build_failure=0.0, runtime_crash=0.001,
                             timeout=0.17, vector_factor=3.0),
        opt_on=OutcomeRates(wrong_code=0.012, build_failure=0.0, runtime_crash=0.001,
                            timeout=0.17, vector_factor=3.0),
        stable_wrong_code=True,
    ),
    # Altera emulator (20) and FPGA (21): below threshold -- most kernels
    # crash or produce internal errors (section 6).
    20: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.05, build_failure=0.3, runtime_crash=0.15,
                             timeout=0.05),
        opt_on=OutcomeRates(wrong_code=0.05, build_failure=0.3, runtime_crash=0.15,
                            timeout=0.05),
        build_failure_message="aoc: internal compiler error",
    ),
    21: DefectProfile(
        opt_off=OutcomeRates(wrong_code=0.05, build_failure=0.45, runtime_crash=0.3,
                             timeout=0.05),
        opt_on=OutcomeRates(wrong_code=0.05, build_failure=0.45, runtime_crash=0.3,
                            timeout=0.05),
        build_failure_message="aoc: internal compiler error",
    ),
}


def defect_models_for(config_id: int) -> Tuple[StochasticDefectModel, StochasticBuildFailureShim]:
    """Create the stochastic defect model pair for a configuration."""
    profile = DEFECT_PROFILES.get(config_id, DefectProfile())
    model = StochasticDefectModel(profile, config_id)
    return model, StochasticBuildFailureShim(model)


__all__ = [
    "OutcomeRates",
    "DefectProfile",
    "StochasticDefectModel",
    "StochasticBuildFailureShim",
    "DEFECT_PROFILES",
    "defect_models_for",
    "program_fingerprint",
    "execution_cache_key",
]
