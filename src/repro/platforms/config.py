"""Device configuration objects (one per row of the paper's Table 1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel_lang import ast


class DeviceType(enum.Enum):
    """Device categories appearing in Table 1."""

    GPU = "GPU"
    CPU = "CPU"
    ACCELERATOR = "Accelerator"
    EMULATOR = "Emulator"
    FPGA = "FPGA"


@dataclass
class DeviceConfig:
    """One (OpenCL-capable device, OpenCL device driver) pair.

    ``bug_models`` hold the defects this configuration's compiler exhibits;
    ``expected_above_threshold`` records the classification the paper reports
    in the final column of Table 1 (the reliability experiment of E1 should
    re-derive it).
    """

    config_id: int
    sdk: str
    device: str
    driver: str
    opencl_version: str
    operating_system: str
    device_type: DeviceType
    expected_above_threshold: bool
    bug_models: List[object] = field(default_factory=list)
    notes: str = ""
    #: Whether this configuration's compiler actually optimises when asked to.
    #: Oclgrind (configuration 19) interprets kernels without optimising, which
    #: is why the paper observes practically identical data for 19- and 19+.
    run_optimiser: bool = True

    @property
    def name(self) -> str:
        return f"config{self.config_id}"

    @property
    def description(self) -> str:
        return (
            f"Configuration {self.config_id}: {self.device} "
            f"({self.sdk}, driver {self.driver}, {self.device_type.value})"
        )

    # ------------------------------------------------------------------
    # Compiler-driver protocol
    # ------------------------------------------------------------------

    def _is_calibrated(self, bug: object) -> bool:
        return getattr(bug, "name", "").startswith("calibrated-")

    def _semantic_model_matches(self, program: ast.Program, optimisations: bool) -> bool:
        """True when a *named* (non-stochastic) defect model fires for this
        program.  Named bugs dominate the calibrated stochastic residue: a
        reduced exemplar such as the Figure 1/2 kernels exhibits the specific
        bug it was reduced to, not an unrelated random defect."""
        for bug in self.bug_models:
            if self._is_calibrated(bug):
                continue
            if bug.triggers(program, optimisations, self):
                return True
        return False

    def frontend_check(self, program: ast.Program, optimisations: bool) -> None:
        """Run front-end defect models; may raise BuildFailure/CompileTimeout."""
        semantic_hit = self._semantic_model_matches(program, optimisations)
        for bug in self.bug_models:
            if bug.stage != "frontend":
                continue
            if self._is_calibrated(bug) and semantic_hit:
                continue
            if bug.triggers(program, optimisations, self):
                bug.raise_failure(program, optimisations, self)

    def apply_bug_models(
        self, program: ast.Program, optimisations: bool
    ) -> Tuple[ast.Program, Dict[str, bool]]:
        """Apply miscompilation / execution-defect models after optimisation."""
        flags: Dict[str, bool] = {}
        current = program
        semantic_hit = self._semantic_model_matches(program, optimisations)
        for bug in self.bug_models:
            if bug.stage == "frontend":
                continue
            if self._is_calibrated(bug) and semantic_hit:
                continue
            if not bug.triggers(current, optimisations, self):
                continue
            current, extra_flags = bug.apply(current, optimisations, self)
            flags.update(extra_flags)
        return current, flags

    # ------------------------------------------------------------------

    def bug_model_names(self) -> List[str]:
        return [bug.name for bug in self.bug_models]

    def table_row(self) -> Dict[str, str]:
        """The Table 1 row for this configuration."""
        return {
            "conf": str(self.config_id),
            "sdk": self.sdk,
            "device": self.device,
            "driver": self.driver,
            "opencl": self.opencl_version,
            "os": self.operating_system,
            "type": self.device_type.value,
            "above_threshold": "yes" if self.expected_above_threshold else "no",
        }


__all__ = ["DeviceConfig", "DeviceType"]
