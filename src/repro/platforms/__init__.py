"""The 21 (device, compiler) configurations of the paper's Table 1.

Real hardware is obviously unavailable to this reproduction; each
configuration is therefore a :class:`~repro.platforms.config.DeviceConfig`
that couples the conformant simulated compiler/runtime with *injected defect
models*:

* semantic bug models (:mod:`repro.platforms.bugmodels`) reproducing every
  bug exemplified in the paper's Figures 1 and 2 -- struct layout and
  copy bugs, union initialisation, vector constant folding, barrier-dependent
  miscompilations, front-end rejections, compile-time hangs;
* calibrated stochastic defect models (:mod:`repro.platforms.calibration`)
  whose rates reproduce the outcome distributions of Tables 3-5.

The registry (:mod:`repro.platforms.registry`) instantiates the full set.
"""

from repro.platforms.config import DeviceConfig, DeviceType
from repro.platforms.registry import (
    all_configurations,
    configurations_above_threshold,
    get_configuration,
    reference_configuration,
)

__all__ = [
    "DeviceConfig",
    "DeviceType",
    "all_configurations",
    "configurations_above_threshold",
    "get_configuration",
    "reference_configuration",
]
