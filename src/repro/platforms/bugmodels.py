"""Semantic bug models reproducing the compiler defects of Figures 1 and 2.

Each model is a small, targeted transformation (or front-end rejection) that
fires when a program exhibits the syntactic pattern the real bug depended on.
The models are applied by the compiler driver *after* the regular
optimisation pipeline, so a buggy configuration genuinely produces a
different executable program -- which is what random differential testing and
EMI testing then detect through execution, exactly as in the paper.

Fidelity notes (also summarised in EXPERIMENTS.md):

* Wrong-code models reproduce the *observable symptom class* of the reported
  bug (a silently wrong value, a lost store, a crash, a hang).  Where the real
  bug produced a thread-dependent result (Figures 2(c) and 2(d)) the model
  produces a uniform wrong result instead -- differential/EMI detection is
  unaffected, only the per-thread pattern differs.
* Machine-crash behaviour (section 6, "Machine crashes") and segmentation
  faults are modelled as :class:`RuntimeCrash` execution flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler import analysis, rewrite
from repro.kernel_lang import ast, types as ty
from repro.runtime.errors import BuildFailure, CompileTimeout

Flags = Dict[str, bool]

FRONTEND = "frontend"
MISCOMPILE = "miscompile"
EXECUTION = "execution"


class BugModel:
    """Base class for injected compiler defects."""

    name = "bug"
    description = ""
    #: One of FRONTEND, MISCOMPILE, EXECUTION.
    stage = MISCOMPILE
    #: Require optimisations on (True), off (False) or either (None).
    requires_optimisations: Optional[bool] = None

    def triggers(self, program: ast.Program, optimisations: bool, config) -> bool:
        if self.requires_optimisations is not None:
            if optimisations != self.requires_optimisations:
                return False
        return self.matches(program, optimisations, config)

    # -- to override -----------------------------------------------------

    def matches(self, program: ast.Program, optimisations: bool, config) -> bool:
        raise NotImplementedError

    def apply(
        self, program: ast.Program, optimisations: bool, config
    ) -> Tuple[ast.Program, Flags]:
        """Transform the program and/or return execution flags."""
        return program, {}

    def raise_failure(self, program: ast.Program, optimisations: bool, config) -> None:
        """Front-end models override this to raise BuildFailure/CompileTimeout."""
        raise BuildFailure(f"{self.name}: {self.description}")


# ---------------------------------------------------------------------------
# Pattern helpers
# ---------------------------------------------------------------------------


def _structs_char_first(program: ast.Program) -> List[ty.StructType]:
    """Structs whose first field is a 1-byte type followed by a larger field."""
    found = []
    for st in program.structs:
        if not isinstance(st, ty.StructType) or len(st.fields) < 2:
            continue
        first, second = st.fields[0], st.fields[1]
        if (
            isinstance(first.type, ty.IntType)
            and first.type.bits == 8
            and second.type.sizeof() > 1
        ):
            found.append(st)
    return found


def _structs_with_vector_field(program: ast.Program) -> List[ty.StructType]:
    found = []
    for st in program.structs:
        for f in st.fields:
            if isinstance(f.type, ty.VectorType):
                found.append(st)
                break
    return found


def _unions_uint_over_short(program: ast.Program) -> List[ty.UnionType]:
    """Unions whose first member is 4 bytes and that also contain a struct
    member starting with a 2-byte field (the Figure 2(a) shape)."""
    found = []
    for st in program.structs:
        if not isinstance(st, ty.UnionType) or len(st.fields) < 2:
            continue
        first = st.fields[0]
        if not (isinstance(first.type, ty.IntType) and first.type.sizeof() == 4):
            continue
        for other in st.fields[1:]:
            if isinstance(other.type, ty.StructType) and other.type.fields:
                lead = other.type.fields[0].type
                if isinstance(lead, ty.IntType) and lead.sizeof() == 2:
                    found.append(st)
                    break
    return found


def _program_nodes(program: ast.Program):
    for fn in program.functions:
        if fn.body is not None:
            yield fn, fn.body


def _kernel_uses_barrier(program: ast.Program) -> bool:
    return analysis.uses_barriers(program)


def _has_forward_declaration(program: ast.Program) -> bool:
    defined = {f.name for f in program.functions if f.body is not None}
    return any(f.body is None and f.name in defined for f in program.functions)


def _largest_struct_size(program: ast.Program) -> int:
    sizes = [st.sizeof() for st in program.structs if isinstance(st, (ty.StructType, ty.UnionType))]
    return max(sizes) if sizes else 0


def _uses_comma_operator(program: ast.Program) -> bool:
    for _, body in _program_nodes(program):
        for node in body.walk():
            if isinstance(node, ast.BinaryOp) and node.op == ",":
                return True
    return False


def _group_id_in_condition_of_helper(program: ast.Program) -> bool:
    group_fns = {"get_group_id", "get_linear_group_id"}
    for fn in program.functions:
        if fn.body is None or fn.is_kernel:
            continue
        for node in fn.body.walk():
            if isinstance(node, ast.IfStmt):
                if any(
                    isinstance(n, ast.WorkItemExpr) and n.function in group_fns
                    for n in node.cond.walk()
                ):
                    return True
    return False


def _mixes_size_t_and_int_bitwise(program: ast.Program) -> bool:
    """Detects the ``int x; x |= gx;`` pattern configuration 15 rejects."""
    size_t_fns = {
        "get_group_id",
        "get_global_size",
        "get_local_size",
        "get_num_groups",
        "get_linear_group_id",
    }
    for _, body in _program_nodes(program):
        for node in body.walk():
            operands = []
            if isinstance(node, ast.BinaryOp) and node.op in ("|", "&", "^", "%"):
                operands = [node.left, node.right]
            elif isinstance(node, ast.AssignStmt) and node.op in ("|=", "&=", "^=", "%="):
                operands = [node.value]
            for op in operands:
                if isinstance(op, ast.WorkItemExpr) and op.function in size_t_fns:
                    return True
    return False


def _whole_struct_copies(program: ast.Program) -> bool:
    """``s = t;`` where both sides are plain variables (struct copy shape)."""
    struct_decls: Dict[str, bool] = {}
    for _, body in _program_nodes(program):
        for node in body.walk():
            if isinstance(node, ast.DeclStmt) and isinstance(
                node.type, (ty.StructType, ty.UnionType)
            ):
                struct_decls[node.name] = True
    if not struct_decls:
        return False
    for _, body in _program_nodes(program):
        for node in body.walk():
            if (
                isinstance(node, ast.AssignStmt)
                and node.op == "="
                and isinstance(node.target, ast.VarRef)
                and isinstance(node.value, ast.VarRef)
                and node.target.name in struct_decls
            ):
                return True
    return False


def _literal_only(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.IntLiteral):
        return True
    if isinstance(expr, ast.VectorLiteral):
        return all(_literal_only(e) for e in expr.elements)
    return False


# ---------------------------------------------------------------------------
# Figure 1 -- bugs in below-threshold configurations
# ---------------------------------------------------------------------------


class AmdCharFirstStructBug(BugModel):
    """Figure 1(a): AMD configurations 5+, 6+, 16+ miscompile any struct whose
    first member is a ``char`` followed by a larger member (result 1 instead
    of 2).  Modelled as the initialiser of the char field being lost."""

    name = "amd-char-first-struct"
    description = "structs starting with char followed by a larger member are laid out wrongly"
    stage = MISCOMPILE
    requires_optimisations = True

    def matches(self, program, optimisations, config):
        affected = _structs_char_first(program)
        if not affected:
            return False
        names = {st.name for st in affected}
        for _, body in _program_nodes(program):
            for node in body.walk():
                if isinstance(node, ast.DeclStmt) and isinstance(node.type, ty.StructType):
                    if node.type.name in names and isinstance(node.init, ast.InitList):
                        return True
        return False

    def apply(self, program, optimisations, config):
        names = {st.name for st in _structs_char_first(program)}

        def stmt_fn(stmt: ast.Stmt):
            if (
                isinstance(stmt, ast.DeclStmt)
                and isinstance(stmt.type, ty.StructType)
                and stmt.type.name in names
                and isinstance(stmt.init, ast.InitList)
                and stmt.init.elements
            ):
                broken = ast.InitList(
                    [ast.IntLiteral(0, ty.CHAR)] + [e.clone() for e in stmt.init.elements[1:]]
                )
                return [ast.DeclStmt(stmt.name, stmt.type, broken, stmt.address_space, stmt.volatile)]
            return None

        return rewrite.rewrite_program(program, stmt_fn=stmt_fn), {}


class AnonStructCopyBug(BugModel):
    """Figure 1(b): anonymous GPU configurations 10-, 11- miscompile whole
    struct assignment (``s = t``) when ``Nx = 1``, losing array members."""

    name = "anon-struct-copy"
    description = "whole-struct copies drop array members when Nx = 1 (opts off)"
    stage = MISCOMPILE
    requires_optimisations = False

    def matches(self, program, optimisations, config):
        if program.launch.global_size[0] != 1:
            return False
        has_array_field = any(
            isinstance(st, ty.StructType)
            and any(isinstance(f.type, ty.ArrayType) for f in st.fields)
            for st in program.structs
        )
        return has_array_field and _whole_struct_copies(program)

    def apply(self, program, optimisations, config):
        struct_names: Dict[str, bool] = {}
        for _, body in _program_nodes(program):
            for node in body.walk():
                if isinstance(node, ast.DeclStmt) and isinstance(node.type, ty.StructType):
                    if any(isinstance(f.type, ty.ArrayType) for f in node.type.fields):
                        struct_names[node.name] = True

        def stmt_fn(stmt: ast.Stmt):
            if (
                isinstance(stmt, ast.AssignStmt)
                and stmt.op == "="
                and isinstance(stmt.target, ast.VarRef)
                and isinstance(stmt.value, ast.VarRef)
                and stmt.target.name in struct_names
            ):
                return []  # the copy is silently dropped
            return None

        return rewrite.rewrite_program(program, stmt_fn=stmt_fn), {}


class AlteraVectorInStructBug(BugModel):
    """Figure 1(c): Altera configurations 20, 21 emit LLVM IR generation
    errors whenever a vector appears inside a struct."""

    name = "altera-vector-in-struct"
    description = "vectors inside structs cause an internal LLVM IR generation error"
    stage = FRONTEND

    def matches(self, program, optimisations, config):
        return bool(_structs_with_vector_field(program))

    def raise_failure(self, program, optimisations, config):
        raise BuildFailure("LLVM IR generation failed for struct containing vector", internal=True)


class AnonCpuBarrierStructBug(BugModel):
    """Figure 1(d): anonymous CPU configuration 17 loses stores made through a
    struct pointer inside a helper function when a barrier precedes the call
    (result 2 instead of 3)."""

    name = "anon-cpu-barrier-struct"
    description = "stores through struct pointers in helper functions are lost after a barrier"
    stage = MISCOMPILE

    def matches(self, program, optimisations, config):
        if not program.structs or not _kernel_uses_barrier(program):
            return False
        for fn in program.functions:
            if fn.body is None or fn.is_kernel:
                continue
            takes_struct_ptr = any(
                isinstance(p.type, ty.PointerType)
                and isinstance(p.type.pointee, (ty.StructType, ty.UnionType))
                for p in fn.params
            )
            if not takes_struct_ptr:
                continue
            for node in fn.body.walk():
                if isinstance(node, ast.AssignStmt) and isinstance(
                    node.target, ast.FieldAccess
                ) and node.target.arrow:
                    return True
        return False

    def apply(self, program, optimisations, config):
        new_functions = []
        for fn in program.functions:
            if fn.body is None or fn.is_kernel:
                new_functions.append(fn)
                continue

            def stmt_fn(stmt: ast.Stmt):
                if (
                    isinstance(stmt, ast.AssignStmt)
                    and isinstance(stmt.target, ast.FieldAccess)
                    and stmt.target.arrow
                ):
                    return []
                return None

            new_functions.append(rewrite.rewrite_function(fn, stmt_fn=stmt_fn))
        out = ast.Program(
            structs=list(program.structs),
            functions=new_functions,
            kernel_name=program.kernel_name,
            buffers=list(program.buffers),
            launch=program.launch,
            metadata=dict(program.metadata),
        )
        return out, {}


class IntelGpuCompileHangBug(BugModel):
    """Figure 1(e): Intel HD Graphics configurations 7, 8 never finish
    compiling a kernel with a long counted loop around an infinite loop."""

    name = "intel-gpu-compile-hang"
    description = "compiler loops forever on long counted loops containing while(1)"
    stage = FRONTEND

    def matches(self, program, optimisations, config):
        for _, body in _program_nodes(program):
            for node in body.walk():
                if isinstance(node, ast.ForStmt) and node.cond is not None:
                    bound = _loop_literal_bound(node)
                    if bound is not None and bound >= 197 and _contains_infinite_while(node):
                        return True
        return False

    def raise_failure(self, program, optimisations, config):
        raise CompileTimeout("compiler did not terminate (loop bound >= 197 around while(1))")


class XeonPhiSlowCompileBug(BugModel):
    """Figure 1(f): the Xeon Phi configuration 18 takes prohibitively long to
    compile kernels that combine large structs with barriers (opts on)."""

    name = "xeonphi-slow-compile"
    description = "compilation exceeds the timeout for large structs combined with barriers"
    stage = FRONTEND
    requires_optimisations = True

    def matches(self, program, optimisations, config):
        return _largest_struct_size(program) > 64 and _kernel_uses_barrier(program)

    def raise_failure(self, program, optimisations, config):
        raise CompileTimeout("compilation exceeded 20s for struct+barrier kernel")


# ---------------------------------------------------------------------------
# Figure 2 -- bugs in above-threshold configurations
# ---------------------------------------------------------------------------


class NvidiaUnionInitBug(BugModel):
    """Figure 2(a): NVIDIA configurations 1- to 4- initialise only the first
    two bytes of a union whose first member is a 4-byte integer but whose
    other member starts with a 2-byte field; the remaining bytes contain
    garbage (0xff)."""

    name = "nvidia-union-init"
    description = "brace initialisation of unions writes only the first member of the wrong arm"
    stage = MISCOMPILE
    requires_optimisations = False

    def matches(self, program, optimisations, config):
        return bool(_unions_uint_over_short(program))

    def apply(self, program, optimisations, config):
        affected = {u.name for u in _unions_uint_over_short(program)}

        def stmt_fn(stmt: ast.Stmt):
            if not isinstance(stmt, ast.DeclStmt) or not isinstance(stmt.init, ast.InitList):
                return None
            new_init = _corrupt_union_inits(stmt.init, stmt.type, affected)
            if new_init is stmt.init:
                return None
            return [ast.DeclStmt(stmt.name, stmt.type, new_init, stmt.address_space, stmt.volatile)]

        return rewrite.rewrite_program(program, stmt_fn=stmt_fn), {}


def _corrupt_union_inits(init: ast.Expr, target_type: ty.Type, affected: set) -> ast.Expr:
    """Recursively rewrite initialisers of affected unions to the value the
    buggy compiler produces (lower 2 bytes kept, upper 2 bytes 0xff)."""
    if not isinstance(init, ast.InitList):
        return init
    if isinstance(target_type, ty.UnionType) and target_type.name in affected:
        if init.elements and isinstance(init.elements[0], ast.IntLiteral):
            original = init.elements[0].value
            corrupted = (original & 0xFFFF) | 0xFFFF0000
            return ast.InitList([ast.IntLiteral(corrupted, ty.UINT)])
        return init
    if isinstance(target_type, ty.StructType):
        new_elems = []
        changed = False
        for fdecl, elem in zip(target_type.fields, init.elements):
            new_elem = _corrupt_union_inits(elem, fdecl.type, affected)
            changed = changed or (new_elem is not elem)
            new_elems.append(new_elem)
        new_elems.extend(init.elements[len(target_type.fields):])
        return ast.InitList(new_elems) if changed else init
    if isinstance(target_type, ty.ArrayType):
        new_elems = []
        changed = False
        for elem in init.elements:
            new_elem = _corrupt_union_inits(elem, target_type.element, affected)
            changed = changed or (new_elem is not elem)
            new_elems.append(new_elem)
        return ast.InitList(new_elems) if changed else init
    return init


class IntelRotateConstFoldBug(BugModel):
    """Figure 2(b): Intel configuration 14 constant-folds ``rotate`` on
    literal vectors to 0xffffffff."""

    name = "intel-rotate-constfold"
    description = "rotate() with literal arguments is folded to 0xffffffff"
    stage = MISCOMPILE

    def matches(self, program, optimisations, config):
        for _, body in _program_nodes(program):
            for node in body.walk():
                if isinstance(node, ast.Call) and node.name in ("rotate", "safe_rotate"):
                    if all(_literal_only(a) for a in node.args):
                        return True
        return False

    def apply(self, program, optimisations, config):
        def expr_fn(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.Call) and expr.name in ("rotate", "safe_rotate"):
                if expr.args and all(_literal_only(a) for a in expr.args):
                    first = expr.args[0]
                    if isinstance(first, ast.VectorLiteral):
                        bad = ast.VectorLiteral(
                            first.type,
                            [ast.IntLiteral(first.type.element.wrap(0xFFFFFFFF), first.type.element)
                             for _ in range(first.type.length)],
                        )
                        return bad
                    if isinstance(first, ast.IntLiteral):
                        return ast.IntLiteral(first.type.wrap(0xFFFFFFFF), first.type)
            return expr

        return rewrite.rewrite_program(program, expr_fn=expr_fn), {}


class IntelBarrierFwdDeclMiscompile(BugModel):
    """Figure 2(c), configurations 12-, 13-: a forward-declared function plus
    barriers inside helper functions makes stores through pointer parameters
    disappear.  (The real bug loses the store for one of the two threads; the
    model loses it uniformly -- see the module docstring.)"""

    name = "intel-barrier-fwddecl-miscompile"
    description = "stores through pointer parameters are lost when helpers contain barriers"
    stage = MISCOMPILE
    requires_optimisations = False

    def matches(self, program, optimisations, config):
        if not _has_forward_declaration(program):
            return False
        for fn in program.functions:
            if fn.body is None or fn.is_kernel:
                continue
            if analysis.contains_barrier(fn.body):
                return True
        return False

    def apply(self, program, optimisations, config):
        new_functions = []
        for fn in program.functions:
            if fn.body is None or fn.is_kernel or not analysis.contains_barrier(fn.body):
                new_functions.append(fn)
                continue

            def stmt_fn(stmt: ast.Stmt):
                if isinstance(stmt, ast.AssignStmt) and isinstance(stmt.target, ast.Deref):
                    return []
                return None

            new_functions.append(rewrite.rewrite_function(fn, stmt_fn=stmt_fn))
        out = ast.Program(
            structs=list(program.structs),
            functions=new_functions,
            kernel_name=program.kernel_name,
            buffers=list(program.buffers),
            launch=program.launch,
            metadata=dict(program.metadata),
        )
        return out, {}


class IntelBarrierFwdDeclCrash(BugModel):
    """Figure 2(c), configurations 14-, 15-: the same pattern crashes with a
    segmentation fault at runtime."""

    name = "intel-barrier-fwddecl-crash"
    description = "forward declaration + barrier in helper crashes at runtime"
    stage = EXECUTION
    requires_optimisations = False

    def matches(self, program, optimisations, config):
        return IntelBarrierFwdDeclMiscompile().matches(program, optimisations, config)

    def apply(self, program, optimisations, config):
        return program, {"force_runtime_crash": True}


class IntelUnreachableLoopBarrierBug(BugModel):
    """Figure 2(d), configurations 14-, 15-: a barrier inside a loop whose
    body is unreachable perturbs the surrounding code (wrong result)."""

    name = "intel-dead-loop-barrier"
    description = "barriers in unreachable loop bodies corrupt neighbouring stores"
    stage = MISCOMPILE
    requires_optimisations = False

    def matches(self, program, optimisations, config):
        for fn in program.functions:
            if fn.body is None:
                continue
            for node in fn.body.walk():
                if isinstance(node, ast.ForStmt) and analysis.contains_barrier(node.body):
                    if _loop_statically_dead(node):
                        return True
        return False

    def apply(self, program, optimisations, config):
        def expr_fn(expr: ast.Expr) -> ast.Expr:
            return expr

        def stmt_fn(stmt: ast.Stmt):
            # The final store of the kernel's result is XORed with 1,
            # modelling the corrupted value the paper observed.
            if (
                isinstance(stmt, ast.AssignStmt)
                and isinstance(stmt.target, ast.IndexAccess)
                and isinstance(stmt.target.base, ast.VarRef)
                and stmt.target.base.name == "out"
                and stmt.op == "="
            ):
                return [
                    ast.AssignStmt(
                        stmt.target.clone(),
                        ast.BinaryOp("^", stmt.value.clone(), ast.IntLiteral(1, ty.ULONG)),
                        "=",
                    )
                ]
            return None

        return rewrite.rewrite_program(program, expr_fn=expr_fn, stmt_fn=stmt_fn), {}


class AnonGpuGroupIdMiscompile(BugModel):
    """Figure 2(e), configuration 9+: conditional guards that mention the
    group id inside helper functions are mis-evaluated, so guarded stores do
    not happen."""

    name = "anon-gpu-groupid-guard"
    description = "if-conditions using the group id in helpers evaluate to false"
    stage = MISCOMPILE
    requires_optimisations = True

    def matches(self, program, optimisations, config):
        return _group_id_in_condition_of_helper(program)

    def apply(self, program, optimisations, config):
        group_fns = {"get_group_id", "get_linear_group_id"}
        new_functions = []
        for fn in program.functions:
            if fn.body is None or fn.is_kernel:
                new_functions.append(fn)
                continue

            def stmt_fn(stmt: ast.Stmt):
                if isinstance(stmt, ast.IfStmt) and any(
                    isinstance(n, ast.WorkItemExpr) and n.function in group_fns
                    for n in stmt.cond.walk()
                ):
                    if stmt.else_block is not None:
                        return [stmt.else_block]
                    return []
                return None

            new_functions.append(rewrite.rewrite_function(fn, stmt_fn=stmt_fn))
        out = ast.Program(
            structs=list(program.structs),
            functions=new_functions,
            kernel_name=program.kernel_name,
            buffers=list(program.buffers),
            launch=program.launch,
            metadata=dict(program.metadata),
        )
        return out, {}


class OclgrindCommaBug(BugModel):
    """Figure 2(f): Oclgrind (configuration 19) mishandles the comma operator;
    the value of ``a , b`` comes out as 0."""

    name = "oclgrind-comma"
    description = "the comma operator yields 0 instead of its right operand"
    stage = EXECUTION

    def matches(self, program, optimisations, config):
        return _uses_comma_operator(program)

    def apply(self, program, optimisations, config):
        return program, {"comma_yields_zero": True}


# ---------------------------------------------------------------------------
# Front-end rejections discussed in section 6 ("Build failures")
# ---------------------------------------------------------------------------


class IntelSizeTMixRejection(BugModel):
    """Configuration 15 rejects legal arithmetic mixing ``int`` and ``size_t``
    with certain operators (e.g. ``int x; x |= gx;``)."""

    name = "intel-sizet-mix-reject"
    description = "legal int/size_t operand mixes are rejected by the front end"
    stage = FRONTEND

    def matches(self, program, optimisations, config):
        return _mixes_size_t_and_int_bitwise(program)

    def raise_failure(self, program, optimisations, config):
        raise BuildFailure("invalid operands to binary expression ('int' and 'size_t')")


class AlteraVectorLogicalRejection(BugModel):
    """Altera configurations 20, 21 reject logical operations on vectors
    (conformant implementations must accept them)."""

    name = "altera-vector-logical-reject"
    description = "logical operators on vector operands are rejected"
    stage = FRONTEND

    def matches(self, program, optimisations, config):
        for _, body in _program_nodes(program):
            for node in body.walk():
                if isinstance(node, ast.BinaryOp) and node.op in ("&&", "||"):
                    if isinstance(node.left, ast.VectorLiteral) or isinstance(
                        node.right, ast.VectorLiteral
                    ):
                        return True
        return False

    def raise_failure(self, program, optimisations, config):
        raise BuildFailure("logical operation on vector operands is not supported")


class AmdIrreducibleControlFlowRejection(BugModel):
    """AMD GPU configurations 5+, 6+ report unsupported irreducible control
    flow for some optimised kernels with nested loops and breaks, even though
    the source has none (section 6)."""

    name = "amd-irreducible-cf"
    description = "optimisation introduces irreducible control flow which is then rejected"
    stage = FRONTEND
    requires_optimisations = True

    def matches(self, program, optimisations, config):
        for _, body in _program_nodes(program):
            for node in body.walk():
                if isinstance(node, (ast.ForStmt, ast.WhileStmt)):
                    inner_loops = [
                        n
                        for n in node.body.walk()
                        if isinstance(n, (ast.ForStmt, ast.WhileStmt))
                    ]
                    if inner_loops and analysis.contains_loop_control(node.body):
                        return True
        return False

    def raise_failure(self, program, optimisations, config):
        raise BuildFailure("unsupported irreducible control flow detected during optimisation")


# ---------------------------------------------------------------------------
# Shared helpers for the figure models
# ---------------------------------------------------------------------------


def _loop_literal_bound(loop: ast.ForStmt) -> Optional[int]:
    cond = loop.cond
    if (
        isinstance(cond, ast.BinaryOp)
        and cond.op in ("<", "<=")
        and isinstance(cond.right, ast.IntLiteral)
    ):
        return cond.right.value
    return None


def _contains_infinite_while(node: ast.Node) -> bool:
    for n in node.walk():
        if isinstance(n, ast.WhileStmt) and isinstance(n.cond, ast.IntLiteral) and n.cond.value != 0:
            return True
    return False


def _loop_statically_dead(loop: ast.ForStmt) -> bool:
    """A loop of the Figure 2(d) shape: ``for (x = 0; x > 0; ...)``."""
    cond = loop.cond
    if isinstance(cond, ast.IntLiteral):
        return cond.value == 0
    if (
        isinstance(cond, ast.BinaryOp)
        and cond.op == ">"
        and isinstance(cond.right, ast.IntLiteral)
        and cond.right.value == 0
        and isinstance(loop.init, ast.AssignStmt)
        and isinstance(loop.init.value, ast.IntLiteral)
        and loop.init.value.value == 0
    ):
        return True
    return False


__all__ = [
    "BugModel",
    "Flags",
    "FRONTEND",
    "MISCOMPILE",
    "EXECUTION",
    "AmdCharFirstStructBug",
    "AnonStructCopyBug",
    "AlteraVectorInStructBug",
    "AnonCpuBarrierStructBug",
    "IntelGpuCompileHangBug",
    "XeonPhiSlowCompileBug",
    "NvidiaUnionInitBug",
    "IntelRotateConstFoldBug",
    "IntelBarrierFwdDeclMiscompile",
    "IntelBarrierFwdDeclCrash",
    "IntelUnreachableLoopBarrierBug",
    "AnonGpuGroupIdMiscompile",
    "OclgrindCommaBug",
    "IntelSizeTMixRejection",
    "AlteraVectorLogicalRejection",
    "AmdIrreducibleControlFlowRejection",
]
