"""The registry of the 21 configurations of Table 1.

Each entry pairs the device/driver metadata from the paper's Table 1 with
the semantic bug models of :mod:`repro.platforms.bugmodels` that affect that
configuration and a calibrated stochastic defect profile
(:mod:`repro.platforms.calibration`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.platforms import bugmodels as bm
from repro.platforms.calibration import defect_models_for
from repro.platforms.config import DeviceConfig, DeviceType


def _with_calibration(config_id: int, models: List[bm.BugModel]) -> List[bm.BugModel]:
    stochastic, frontend_shim = defect_models_for(config_id)
    return models + [frontend_shim, stochastic]


def _build_registry() -> Dict[int, DeviceConfig]:
    registry: Dict[int, DeviceConfig] = {}

    def add(config: DeviceConfig) -> None:
        registry[config.config_id] = config

    nvidia_bugs = [bm.NvidiaUnionInitBug()]
    add(DeviceConfig(1, "NVIDIA 6.5.19", "NVIDIA GeForce GTX Titan", "343.22", "1.1",
                     "Ubuntu 14.04.1 LTS", DeviceType.GPU, True,
                     _with_calibration(1, list(nvidia_bugs))))
    add(DeviceConfig(2, "NVIDIA 6.5.19", "NVIDIA GeForce GTX 770", "343.22", "1.1",
                     "Ubuntu 14.04.1 LTS", DeviceType.GPU, True,
                     _with_calibration(2, list(nvidia_bugs))))
    add(DeviceConfig(3, "NVIDIA 7.0.28", "NVIDIA Tesla M2050", "346.47", "1.1",
                     "RHEL Server 6.5", DeviceType.GPU, True,
                     _with_calibration(3, list(nvidia_bugs))))
    add(DeviceConfig(4, "NVIDIA 7.0.28", "NVIDIA Tesla K40c", "346.47", "1.1",
                     "RHEL Server 6.5", DeviceType.GPU, True,
                     _with_calibration(4, list(nvidia_bugs))))

    amd_gpu_bugs = [bm.AmdCharFirstStructBug(), bm.AmdIrreducibleControlFlowRejection()]
    add(DeviceConfig(5, "AMD 2.9-1", "AMD Radeon HD7970 GHz edition", "Catalyst 14.9", "1.2",
                     "Windows 7 Enterprise", DeviceType.GPU, False,
                     _with_calibration(5, list(amd_gpu_bugs))))
    add(DeviceConfig(6, "AMD 2.9-1", "ATI Radeon HD 6570 650MHz", "Catalyst 14.9", "1.2",
                     "Windows 7 Enterprise", DeviceType.GPU, False,
                     _with_calibration(6, list(amd_gpu_bugs))))

    intel_gpu_bugs = [bm.IntelGpuCompileHangBug()]
    add(DeviceConfig(7, "Intel 4.6", "Intel HD Graphics 4600", "10.18.10.3960", "1.2",
                     "Windows 7 Enterprise", DeviceType.GPU, False,
                     _with_calibration(7, list(intel_gpu_bugs))))
    add(DeviceConfig(8, "Intel 4.6", "Intel HD Graphics 4000", "10.18.10.3412", "1.2",
                     "Windows 8.1 Pro", DeviceType.GPU, False,
                     _with_calibration(8, list(intel_gpu_bugs))))

    add(DeviceConfig(9, "Anon. SDK 1", "Anon. device 1", "Anon. driver 1c", "1.1",
                     "Linux (anon. version)", DeviceType.GPU, True,
                     _with_calibration(9, [bm.AnonGpuGroupIdMiscompile()])))
    anon_old_bugs = [bm.AnonStructCopyBug(), bm.AnonGpuGroupIdMiscompile()]
    add(DeviceConfig(10, "Anon. SDK 1", "Anon. device 1", "Anon. driver 1b", "1.1",
                     "Linux (anon. version)", DeviceType.GPU, False,
                     _with_calibration(10, list(anon_old_bugs))))
    add(DeviceConfig(11, "Anon. SDK 1", "Anon. device 1", "Anon. driver 1a", "1.1",
                     "Linux (anon. version)", DeviceType.GPU, False,
                     _with_calibration(11, list(anon_old_bugs))))

    intel_i7_bugs = [bm.IntelBarrierFwdDeclMiscompile()]
    add(DeviceConfig(12, "Intel 4.6", "Intel Core i7-4770 @ 3.40 GHz", "4.6.0.92", "2.0",
                     "Windows 7 Enterprise", DeviceType.CPU, True,
                     _with_calibration(12, list(intel_i7_bugs))))
    add(DeviceConfig(13, "Intel 4.6", "Intel Core i7-4770 @ 3.40 GHz", "4.2.0.76", "1.2",
                     "Windows 7 Enterprise", DeviceType.CPU, True,
                     _with_calibration(13, list(intel_i7_bugs))))

    intel_i5_bugs = [
        bm.IntelRotateConstFoldBug(),
        bm.IntelBarrierFwdDeclCrash(),
        bm.IntelUnreachableLoopBarrierBug(),
    ]
    add(DeviceConfig(14, "Intel 4.6", "Intel Core i5-3317U @ 1.70 GHz", "3.0.1.10878", "1.2",
                     "Windows 8.1 Pro", DeviceType.CPU, True,
                     _with_calibration(14, list(intel_i5_bugs))))

    intel_xeon_bugs = [
        bm.IntelSizeTMixRejection(),
        bm.IntelBarrierFwdDeclCrash(),
        bm.IntelUnreachableLoopBarrierBug(),
    ]
    add(DeviceConfig(15, "Intel XE 2013 R2", "Intel Xeon X5650 @ 2.67GHz", "1.2 build 56860",
                     "1.2", "RHEL Server 6.5", DeviceType.CPU, True,
                     _with_calibration(15, list(intel_xeon_bugs))))

    add(DeviceConfig(16, "AMD 2.9-1", "Intel Xeon E5-2609 v2 @ 2.50GHz", "Catalyst 14.9", "1.2",
                     "Windows 7 Enterprise", DeviceType.CPU, False,
                     _with_calibration(16, [bm.AmdCharFirstStructBug()])))
    add(DeviceConfig(17, "Anon. SDK 2", "Anon. device 2", "Anon. driver 2", "1.1",
                     "Linux (anon. version)", DeviceType.CPU, False,
                     _with_calibration(17, [bm.AnonCpuBarrierStructBug()])))
    add(DeviceConfig(18, "Intel XE 2013 R2", "Intel Xeon Phi", "5889-14", "1.2",
                     "RHEL Server 6.5", DeviceType.ACCELERATOR, False,
                     _with_calibration(18, [bm.XeonPhiSlowCompileBug()])))
    add(DeviceConfig(19, "Intel 4.6", "Oclgrind v14.5", "LLVM 3.2, SPIR 1.2", "1.2",
                     "Ubuntu 14.04", DeviceType.EMULATOR, True,
                     _with_calibration(19, [bm.OclgrindCommaBug()]),
                     run_optimiser=False))

    altera_bugs = [bm.AlteraVectorInStructBug(), bm.AlteraVectorLogicalRejection()]
    add(DeviceConfig(20, "Altera 14.0", "Altera PCIe-385N D5 (Emulated)", "aoc 14.0 build 200",
                     "1.0", "CentOS 6.5", DeviceType.EMULATOR, False,
                     _with_calibration(20, list(altera_bugs))))
    add(DeviceConfig(21, "Altera 14.0", "Altera PCIe-385N D5", "aoc 14.0 build 200", "1.0",
                     "CentOS 6.5", DeviceType.FPGA, False,
                     _with_calibration(21, list(altera_bugs))))
    return registry


_REGISTRY = _build_registry()


def all_configurations() -> List[DeviceConfig]:
    """Every configuration of Table 1, in id order."""
    return [_REGISTRY[i] for i in sorted(_REGISTRY)]


def get_configuration(config_id: int) -> DeviceConfig:
    """Look up a single configuration by its Table 1 id (1-21)."""
    return _REGISTRY[config_id]


def configurations_above_threshold() -> List[DeviceConfig]:
    """The configurations the paper classifies above the reliability threshold
    (the final column of Table 1): 1-4, 9, 12-15 and 19."""
    return [c for c in all_configurations() if c.expected_above_threshold]


def reference_configuration() -> Optional[DeviceConfig]:
    """The conformant, bug-free reference (not part of Table 1).

    Returned as ``None`` because the compiler driver treats the absence of a
    configuration as "no injected defects"; the helper exists to make call
    sites explicit about their intent.
    """
    return None


__all__ = [
    "all_configurations",
    "get_configuration",
    "configurations_above_threshold",
    "reference_configuration",
]
