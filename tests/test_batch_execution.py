"""The batch == sequential byte-identity property (batched execution's gate).

A batch shares *lowering*, never results: running any member of a
``lower_batch`` family must be byte-identical to having lowered that member
alone -- same outputs, same final step counts, same ``ExecutionTimeout``
payload at ``max_steps + 1``, same race reports, same UB classification --
on every engine, and the harnesses, campaigns and worker pools built on top
must produce identical tables, records and cache statistics whether batch
dispatch is on (the default) or off.  Every engine fast path (the jit's
one-module-per-family emission, the compiled engine's shared function
records) is gated by the tests in this file; see ENGINE.md for the batch
launch protocol itself.
"""

import inspect

import pytest

from repro.emi import generate_variants
from repro.generator import generate_kernel
from repro.generator.options import GeneratorOptions, Mode
from repro.kernel_lang import ast, types as ty
from repro.platforms import get_configuration
from repro.runtime import memory
from repro.runtime.device import run_program
from repro.runtime.engine import PreparedBatch, PreparedLaunch, get_engine
from repro.runtime.errors import ExecutionTimeout
from repro.testing.campaign import (
    generate_emi_bases,
    run_clsmith_campaign,
    run_emi_campaign,
)
from repro.testing.differential import DifferentialHarness
from repro.testing.emi_harness import EmiHarness

ENGINES = ("reference", "compiled", "jit")

_FAST = GeneratorOptions(
    min_total_threads=4, max_total_threads=12, max_group_size=4, max_statements=8
)

#: The options test_engine.py's timeout corpus uses: every Mode.BASIC seed
#: below exceeds a 40-step budget on every engine.
_TIMEOUT_OPTIONS = GeneratorOptions(
    min_total_threads=4, max_total_threads=24, max_group_size=8, max_statements=8
)


def _observe(program, **kwargs):
    """Everything observable about one execution, exceptions included."""
    try:
        result = run_program(program, **kwargs)
    except Exception as exc:  # noqa: BLE001 - classification is the point
        kind = getattr(exc, "kind", None)
        steps = getattr(exc, "steps", None)
        return ("raise", type(exc).__name__, kind, steps)
    return (
        "ok",
        result.outputs,
        result.steps,
        tuple(result.race_reports),
        result.result_hash(),
    )


def _family(seed, n_variants=6):
    base = generate_emi_bases(1, seed=seed, options=_FAST)[0]
    return [base] + generate_variants(base)[:n_variants]


# ---------------------------------------------------------------------------
# Engine level: lower_batch members == individually lowered programs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_batch_members_match_sequential_on_emi_family(engine):
    """The gating property: for every member of a batched EMI family, the
    batch-lowered execution is byte-identical (outputs, steps, hash) to a
    fresh sequential lowering -- under both comma-defect settings."""
    for seed in (3, 11):
        family = _family(seed)
        for comma in (False, True):
            batch = get_engine(engine).lower_batch(
                family, comma_yields_zero=comma, max_steps=300_000
            )
            assert isinstance(batch, PreparedBatch)
            assert len(batch) == len(family)
            for program, prepared in zip(family, batch):
                kwargs = dict(
                    engine=engine, comma_yields_zero=comma, max_steps=300_000
                )
                sequential = _observe(program, **kwargs)
                batched = _observe(program, prepared=prepared, **kwargs)
                assert batched == sequential, (
                    f"{engine} batch member diverges from sequential "
                    f"(seed={seed}, comma={comma})"
                )


@pytest.mark.parametrize("engine", ENGINES)
def test_batch_members_are_relaunchable(engine):
    """Cached family members are reused across launches: running the same
    batch member twice must give identical results (bind resets the shared
    step counter)."""
    family = _family(3, n_variants=3)
    batch = get_engine(engine).lower_batch(family, max_steps=300_000)
    for program, prepared in zip(family, batch):
        first = _observe(program, engine=engine, max_steps=300_000, prepared=prepared)
        second = _observe(program, engine=engine, max_steps=300_000, prepared=prepared)
        assert first == second


@pytest.mark.parametrize("engine", ENGINES)
def test_batch_members_report_identical_timeout_payload(engine):
    """Timeout parity inside a batch: every member classifies as a timeout
    with the exact first-crossing payload ``max_steps + 1``, matching its
    sequential lowering."""
    programs = [
        generate_kernel(Mode.BASIC, seed, options=_TIMEOUT_OPTIONS)
        for seed in range(4)
    ]
    batch = get_engine(engine).lower_batch(programs, max_steps=40)
    for program, prepared in zip(programs, batch):
        sequential = _observe(program, engine=engine, max_steps=40)
        assert sequential[:2] == ("raise", "ExecutionTimeout")
        batched = _observe(program, engine=engine, max_steps=40, prepared=prepared)
        assert batched == sequential
        with pytest.raises(ExecutionTimeout) as excinfo:
            run_program(program, engine=engine, max_steps=40, prepared=prepared)
        assert excinfo.value.steps == 41


def _racy_program():
    """Every thread writes acc[0] without synchronisation."""
    kernel = ast.FunctionDecl(
        "entry",
        ty.VOID,
        [ast.ParamDecl("acc", ty.PointerType(ty.UINT, ty.GLOBAL))],
        ast.Block(
            [
                ast.AssignStmt(
                    ast.IndexAccess(ast.var("acc"), ast.lit(0)),
                    ast.global_linear_id(),
                )
            ]
        ),
        is_kernel=True,
    )
    return ast.Program(
        functions=[kernel],
        buffers=[ast.BufferSpec("acc", ty.UINT, 1, is_output=True)],
        launch=ast.LaunchSpec((4, 1, 1), (4, 1, 1)),
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_batch_members_report_identical_races(engine):
    """Race-report parity inside a batch -- including a duplicated member,
    which exercises the engines' handling of repeats in one batch."""
    program = _racy_program()
    batch = get_engine(engine).lower_batch([program, program])
    sequential = _observe(
        program, engine=engine, check_races=True, throw_on_race=False
    )
    assert sequential[0] == "ok" and sequential[3], "expected race reports"
    for prepared in batch:
        batched = _observe(
            program,
            engine=engine,
            check_races=True,
            throw_on_race=False,
            prepared=prepared,
        )
        assert batched == sequential


def _single_thread_program(statements):
    kernel = ast.FunctionDecl(
        "entry",
        ty.VOID,
        [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))],
        ast.Block(statements),
        is_kernel=True,
    )
    return ast.Program(
        functions=[kernel],
        buffers=[ast.BufferSpec("out", ty.ULONG, 1, is_output=True)],
        launch=ast.LaunchSpec((1, 1, 1), (1, 1, 1)),
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_batch_of_heterogeneous_programs_preserves_ub_classification(engine):
    """A batch need not be a variant family: structurally unrelated members
    (here, distinct UB kinds) still classify exactly as sequential runs."""
    programs = [
        _single_thread_program(
            [ast.out_write(ast.binop("/", ast.lit(1), ast.lit(0)))]
        ),
        _single_thread_program(
            [ast.out_write(ast.binop("<<", ast.lit(1), ast.lit(99)))]
        ),
        _single_thread_program([ast.out_write(ast.lit(7))]),
    ]
    batch = get_engine(engine).lower_batch(programs)
    for program, prepared in zip(programs, batch):
        sequential = _observe(program, engine=engine)
        batched = _observe(program, engine=engine, prepared=prepared)
        assert batched == sequential
    assert _observe(programs[2], engine=engine, prepared=batch[2])[0] == "ok"


def test_prepared_batch_rejects_misaligned_lists():
    program = _single_thread_program([ast.out_write(ast.lit(1))])
    prepared = get_engine("compiled").lower(program)
    with pytest.raises(ValueError, match="align"):
        PreparedBatch([program], [prepared, prepared])


@pytest.mark.parametrize("engine", ENGINES)
def test_prepare_batch_yields_lazily_bound_launches(engine):
    """``prepare_batch`` is a generator: members bind one at a time as the
    iterator advances (family members may share lowering state, so binding
    member N while N-1 is live would violate the one-active-launch rule)."""
    programs = [
        _single_thread_program([ast.out_write(ast.lit(n))]) for n in (1, 2)
    ]
    global_memory = memory.GlobalMemory()
    for spec in programs[0].buffers:
        global_memory.allocate(
            spec.name,
            spec.element_type,
            spec.size,
            spec.initial_contents(),
            spec.address_space,
        )
    launches = get_engine(engine).prepare_batch(programs, global_memory)
    assert inspect.isgenerator(launches), "prepare_batch must bind lazily"
    for launch in launches:
        assert isinstance(launch, PreparedLaunch)


# ---------------------------------------------------------------------------
# The jit fast path: one emitted module per family
# ---------------------------------------------------------------------------


def test_jit_family_shares_one_emitted_module():
    """A jit family is one exec'd module: every member resolves its entry
    from the same namespace and shares one step counter.  Structurally
    identical members (EMI pruning regenerates the same residue often)
    collapse onto one JitProgram; distinct members get distinct entries."""
    from repro.platforms.calibration import program_fingerprint

    family = _family(3)
    fingerprints = [program_fingerprint(program) for program in family]
    n_distinct = len(set(fingerprints))
    assert 1 < n_distinct < len(family), "corpus should contain duplicates"
    batch = get_engine("jit").lower_batch(family, max_steps=300_000)
    namespaces = {id(member._ns) for member in batch.prepared}
    assert namespaces == {id(batch.prepared[0]._ns)}
    limits = {id(member._limits) for member in batch.prepared}
    assert limits == {id(batch.prepared[0]._limits)}
    by_fp = {}
    for fp, member in zip(fingerprints, batch.prepared):
        by_fp.setdefault(fp, set()).add(id(member))
    # One JitProgram per distinct program, shared across its duplicates.
    assert all(len(ids) == 1 for ids in by_fp.values())
    assert len({id(member._entry) for member in batch.prepared}) == n_distinct


def test_jit_single_member_batch_falls_back_to_plain_lowering():
    """``lower_batch`` on one program must not pay family-emission overhead
    (and must still satisfy the byte-identity property)."""
    program = _family(3, n_variants=0)[0]
    batch = get_engine("jit").lower_batch([program], max_steps=300_000)
    assert len(batch) == 1
    assert _observe(
        program, engine="jit", max_steps=300_000, prepared=batch[0]
    ) == _observe(program, engine="jit", max_steps=300_000)


# ---------------------------------------------------------------------------
# Harness level: batch dispatch on == off
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_differential_harness_batch_matches_sequential(engine):
    configs = [None] + [get_configuration(i) for i in (1, 17, 19, 20)]
    kwargs = dict(max_steps=300_000, engine=engine)
    for seed in (0, 5):
        program = generate_kernel(Mode.BASIC, seed, options=_FAST)
        batched = DifferentialHarness(configs, **kwargs).run(program)
        sequential = DifferentialHarness(configs, batch=False, **kwargs).run(program)
        assert batched == sequential


@pytest.mark.parametrize("engine", ENGINES)
def test_emi_harness_batch_matches_sequential(engine):
    base = generate_emi_bases(1, seed=3, options=_FAST)[0]
    variants = [base] + generate_variants(base)[:6]
    kwargs = dict(max_steps=300_000, engine=engine)
    for config in (None, get_configuration(19)):
        batched = EmiHarness(**kwargs).run_family(variants, config, optimisations=True)
        sequential = EmiHarness(batch=False, **kwargs).run_family(
            variants, config, optimisations=True
        )
        assert batched == sequential


@pytest.mark.parametrize("engine", ("compiled", "jit"))
def test_harness_batch_is_stats_transparent(engine):
    """Batch planning must not perturb the observable cache accounting:
    result-cache and prepared-cache counters match the sequential flow
    exactly, including ``prepared_stats.lookups == cache_stats.misses``."""
    configs = [None] + [get_configuration(i) for i in (1, 19)]
    program = generate_kernel(Mode.BASIC, seed=2, options=_FAST)
    batched = DifferentialHarness(configs, max_steps=300_000, engine=engine)
    sequential = DifferentialHarness(
        configs, max_steps=300_000, engine=engine, batch=False
    )
    batched.run(program)
    sequential.run(program)
    assert batched.cache.stats == sequential.cache.stats
    assert batched.prepared_stats == sequential.prepared_stats
    assert batched.prepared_stats.lookups == batched.cache.stats.misses


# ---------------------------------------------------------------------------
# Campaign level: batch dispatch on == off, serial and process backends
# ---------------------------------------------------------------------------


def test_clsmith_campaign_batch_matches_sequential_serial_and_parallel():
    configs = [get_configuration(i) for i in (1, 19)]
    kwargs = dict(
        kernels_per_mode=2,
        modes=(Mode.BASIC,),
        options=_FAST,
        max_steps=300_000,
        seed=0,
        engine="jit",
    )
    batched = run_clsmith_campaign(configs, **kwargs)
    sequential = run_clsmith_campaign(configs, batch=False, **kwargs)
    assert batched.table_rows() == sequential.table_rows()
    assert batched.render() == sequential.render()
    assert batched.cache_stats == sequential.cache_stats
    assert batched.prepared_stats == sequential.prepared_stats
    parallel = run_clsmith_campaign(configs, parallelism=2, **kwargs)
    assert parallel.table_rows() == batched.table_rows()
    assert parallel.render() == batched.render()


def test_emi_campaign_batch_matches_sequential():
    configs = [get_configuration(i) for i in (1, 19)]
    kwargs = dict(
        n_bases=2,
        variants_per_base=4,
        optimisation_levels=(True,),
        options=_FAST,
        max_steps=300_000,
        seed=2,
        engine="jit",
    )
    batched = run_emi_campaign(configs, **kwargs)
    sequential = run_emi_campaign(configs, batch=False, **kwargs)
    assert batched.rows == sequential.rows
    assert batched.cache_stats == sequential.cache_stats
    assert batched.prepared_stats == sequential.prepared_stats
    parallel = run_emi_campaign(configs, parallelism=2, **kwargs)
    assert parallel.rows == batched.rows
