"""Tests for EMI machinery: pruning strategies, the variant grid, dead-array
inversion and injection into existing (workload) kernels."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.emi import (
    PRUNING_GRID,
    EmiInjector,
    PruningConfig,
    generate_variants,
    inject_emi_blocks,
    invert_dead_array,
    prune_program,
)
from repro.emi.pruning import count_emi_statements
from repro.generator import Mode, generate_kernel
from repro.generator.options import GeneratorOptions
from repro.kernel_lang import ast, printer
from repro.kernel_lang.semantics import validate_program
from repro.runtime.device import run_program
from repro.workloads import get_workload

_FAST = GeneratorOptions(min_total_threads=4, max_total_threads=16, max_group_size=4,
                         max_statements=6)


def _base(seed=0, blocks=3):
    return generate_kernel(Mode.BASIC, seed=seed, options=_FAST, emi_blocks=blocks)


# ---------------------------------------------------------------------------
# Pruning configuration and grid
# ---------------------------------------------------------------------------


def test_pruning_config_validation_and_adjusted_lift():
    with pytest.raises(ValueError):
        PruningConfig(p_leaf=1.5)
    with pytest.raises(ValueError):
        PruningConfig(p_compound=0.6, p_lift=0.6)
    config = PruningConfig(p_leaf=0.3, p_compound=0.3, p_lift=0.6)
    assert config.adjusted_lift == pytest.approx(0.6 / 0.7)
    assert PruningConfig(p_compound=1.0, p_lift=0.0).adjusted_lift == 0.0


def test_pruning_grid_has_40_points_as_in_the_paper():
    assert len(PRUNING_GRID) == 40
    assert all(c.p_compound + c.p_lift <= 1.0 + 1e-9 for c in PRUNING_GRID)
    assert len({c.label() for c in PRUNING_GRID}) == 40


# ---------------------------------------------------------------------------
# Pruning behaviour
# ---------------------------------------------------------------------------


def test_prune_everything_empties_emi_blocks():
    base = _base()
    pruned = prune_program(base, PruningConfig(p_leaf=1.0, p_compound=1.0), seed=1)
    assert count_emi_statements(pruned) < count_emi_statements(base)
    for node in pruned.kernel().body.walk():
        if isinstance(node, ast.IfStmt) and node.emi_marker is not None:
            assert node.then_block.statements == []


def test_prune_nothing_is_identity_on_emi_blocks():
    base = _base()
    pruned = prune_program(base, PruningConfig(), seed=1)
    assert count_emi_statements(pruned) == count_emi_statements(base)
    assert printer.print_program(pruned).replace(" /* EMI block", "#") .count("#") == \
        printer.print_program(base).replace(" /* EMI block", "#").count("#")


def test_pruning_never_touches_live_code():
    base = _base()
    live_statements = [
        s for s in base.kernel().body.statements
        if not (isinstance(s, ast.IfStmt) and s.emi_marker is not None)
    ]
    pruned = prune_program(base, PruningConfig(p_leaf=1.0, p_compound=1.0, p_lift=0.0), seed=2)
    pruned_live = [
        s for s in pruned.kernel().body.statements
        if not (isinstance(s, ast.IfStmt) and s.emi_marker is not None)
    ]
    assert len(pruned_live) == len(live_statements)


def test_pruned_variants_remain_valid_and_equivalent():
    base = _base(seed=3)
    reference = run_program(base).outputs
    for index, config in enumerate(PRUNING_GRID[::7]):
        variant = prune_program(base, config, seed=index)
        assert validate_program(variant) == []
        assert run_program(variant).outputs == reference


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       leaf=st.sampled_from([0.0, 0.3, 0.6, 1.0]),
       compound=st.sampled_from([0.0, 0.3, 0.6]),
       lift=st.sampled_from([0.0, 0.3]))
def test_pruning_preserves_semantics_property(seed, leaf, compound, lift):
    base = _base(seed=seed % 5, blocks=2)
    variant = prune_program(base, PruningConfig(leaf, compound, lift), seed=seed)
    assert run_program(variant).outputs == run_program(base).outputs


def test_lift_pruning_removes_outer_loop_control():
    # Build an EMI block containing a for loop with a break, then force lift.
    base = _base(seed=4)
    lifted = prune_program(base, PruningConfig(p_leaf=0.0, p_compound=0.0, p_lift=1.0), seed=9)
    # After lifting there must be no break/continue directly inside an EMI
    # block that is not nested in a loop.
    for node in lifted.kernel().body.walk():
        if isinstance(node, ast.IfStmt) and node.emi_marker is not None:
            for stmt in node.then_block.statements:
                assert not isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt))
    assert run_program(lifted).outputs == run_program(base).outputs


# ---------------------------------------------------------------------------
# Variant generation and dead-array inversion
# ---------------------------------------------------------------------------


def test_generate_variants_produces_grid_sized_family_with_metadata():
    base = _base(seed=5)
    variants = generate_variants(base)
    assert len(variants) == 40
    fingerprints = {v.metadata["emi_base_fingerprint"] for v in variants}
    assert fingerprints == {base.metadata["emi_base_fingerprint"]}
    assert sorted(v.metadata["emi_variant_index"] for v in variants) == list(range(40))


def test_invert_dead_array_changes_initialisation_only():
    base = _base(seed=6)
    inverted = invert_dead_array(base)
    assert base.buffer("dead").init == "iota"
    assert inverted.buffer("dead").init == "iota_inverted"
    assert inverted.metadata["dead_array_inverted"] is True
    # Inverting the array makes the EMI guards true, so results may change,
    # but the program must stay well defined.
    run_program(inverted, check_races=True)


# ---------------------------------------------------------------------------
# Injection into workload kernels
# ---------------------------------------------------------------------------


def test_injection_adds_dead_buffer_and_blocks():
    program = get_workload("hotspot").program()
    injected, report = EmiInjector(seed=1, n_blocks=2).inject(program)
    assert report.n_blocks == 2
    assert any(b.name == "dead" for b in injected.buffers)
    assert any(p.name == "dead" for p in injected.kernel().params)
    blocks = [n for n in injected.kernel().body.walk()
              if isinstance(n, ast.IfStmt) and n.emi_marker is not None]
    assert len(blocks) == 2
    # The original program is untouched.
    assert not any(b.name == "dead" for b in program.buffers)


def test_injection_preserves_workload_results():
    program = get_workload("sad").program()
    reference = run_program(program).outputs
    for substitutions in (False, True):
        injected = inject_emi_blocks(program, seed=3, n_blocks=2,
                                     substitutions=substitutions)
        assert validate_program(injected) == []
        outputs = run_program(injected).outputs
        assert outputs["out"] == reference["out"]


def test_injection_with_substitutions_aliases_live_variables():
    program = get_workload("cutcp").program()
    injected, report = EmiInjector(seed=7, n_blocks=1, substitutions=True).inject(program)
    assert report.substitutions
    assert report.aliased_variables, "substitution mode must alias at least one live variable"
    declared = {s.name for s in injected.kernel().body.walk() if isinstance(s, ast.DeclStmt)}
    assert set(report.aliased_variables) <= declared


def test_injection_then_pruning_round_trip():
    program = get_workload("pathfinder").program()
    reference = run_program(program).outputs
    injected = inject_emi_blocks(program, seed=11, n_blocks=2, substitutions=True)
    for config in (PruningConfig(1.0, 0.0, 0.0), PruningConfig(0.0, 1.0, 0.0),
                   PruningConfig(0.3, 0.3, 0.3)):
        variant = prune_program(injected, config, seed=5)
        assert run_program(variant).outputs["out"] == reference["out"]
