"""Tests for builtin semantics (clamp, rotate, safe_*) and static validation."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel_lang import ast, builtins, types as ty
from repro.kernel_lang.semantics import UBKind, ValidationError, validate_program


# ---------------------------------------------------------------------------
# Builtins
# ---------------------------------------------------------------------------


def test_clamp_basic_and_undefined():
    assert builtins.cl_clamp(5, 0, 3, ty.INT) == 3
    assert builtins.cl_clamp(-5, 0, 3, ty.INT) == 0
    assert builtins.cl_clamp(2, 0, 3, ty.INT) == 2
    with pytest.raises(builtins.BuiltinUndefined):
        builtins.cl_clamp(2, 3, 0, ty.INT)


def test_safe_clamp_returns_x_when_bounds_inverted():
    assert builtins.safe_clamp(2, 3, 0, ty.INT) == 2


def test_rotate_matches_figure_2b_expectation():
    # rotate(1, 0) must be 1 -- the Intel bug folded it to 0xffffffff.
    assert builtins.cl_rotate(1, 0, ty.UINT) == 1
    assert builtins.cl_rotate(1, 1, ty.UINT) == 2
    assert builtins.cl_rotate(0x80000000, 1, ty.UINT) == 1
    assert builtins.cl_rotate(1, 32, ty.UINT) == 1  # amount taken mod width


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=200))
def test_rotate_is_bit_preserving(x, y):
    rotated = builtins.cl_rotate(x, y, ty.UINT)
    assert bin(rotated & 0xFFFFFFFF).count("1") == bin(x).count("1")


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1),
       st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_safe_add_sub_mul_always_in_range(a, b):
    for fn in (builtins.safe_add, builtins.safe_sub, builtins.safe_mul):
        assert ty.INT.contains(fn(a, b, ty.INT))


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1),
       st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_safe_div_and_mod_total(a, b):
    q = builtins.safe_div(a, b, ty.INT)
    r = builtins.safe_mod(a, b, ty.INT)
    assert ty.INT.contains(q) and ty.INT.contains(r)
    if b not in (0, -1) and a != ty.INT.min_value:
        assert q * b + r == a


def test_safe_div_by_zero_returns_dividend():
    assert builtins.safe_div(17, 0, ty.INT) == 17
    assert builtins.safe_mod(17, 0, ty.INT) == 17
    assert builtins.safe_div(ty.INT.min_value, -1, ty.INT) == ty.INT.min_value


def test_safe_shifts_clamp_amount():
    assert builtins.safe_lshift(1, 40, ty.INT) == 1 << 8
    assert builtins.safe_rshift(256, 40, ty.INT) == 1
    assert builtins.safe_lshift(1, -3, ty.INT) == 1


def test_c_division_truncates_toward_zero():
    assert builtins._c_div(-7, 2) == -3
    assert builtins._c_mod(-7, 2) == -1
    assert builtins._c_div(7, -2) == -3


def test_saturating_arithmetic():
    assert builtins.cl_add_sat(ty.CHAR.max_value, 10, ty.CHAR) == ty.CHAR.max_value
    assert builtins.cl_sub_sat(ty.CHAR.min_value, 10, ty.CHAR) == ty.CHAR.min_value


def test_mul_hi_and_hadd():
    assert builtins.cl_mul_hi(2**20, 2**20, ty.UINT) == (2**40) >> 32
    assert builtins.cl_hadd(3, 4, ty.INT) == 3


def test_builtin_registry_consistency():
    assert builtins.is_builtin("clamp")
    assert builtins.is_builtin("atomic_inc")
    assert not builtins.is_builtin("printf")
    assert builtins.builtin_arity("safe_clamp") == 3
    assert builtins.builtin_arity("atomic_cmpxchg") == 3
    with pytest.raises(KeyError):
        builtins.builtin_arity("unknown")
    assert set(builtins.REDUCTION_ATOMICS) <= set(builtins.ATOMIC_BUILTINS)


def test_abs_returns_unsigned_value():
    assert builtins.cl_abs(-5, ty.INT) == 5
    assert builtins.cl_abs(ty.INT.min_value, ty.INT) == 2**31


# ---------------------------------------------------------------------------
# Static validation
# ---------------------------------------------------------------------------


def _kernel_with_body(statements, params=None, buffers=None):
    params = params or [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))]
    buffers = buffers if buffers is not None else [ast.BufferSpec("out", ty.ULONG, 1, is_output=True)]
    kernel = ast.FunctionDecl("entry", ty.VOID, params, ast.Block(statements), is_kernel=True)
    return ast.Program(functions=[kernel], buffers=buffers,
                       launch=ast.LaunchSpec((1, 1, 1), (1, 1, 1)))


def test_validate_accepts_well_formed_program():
    program = _kernel_with_body([ast.out_write(ast.IntLiteral(1))])
    assert validate_program(program) == []


def test_validate_rejects_undeclared_variable():
    program = _kernel_with_body([ast.out_write(ast.VarRef("ghost"))])
    with pytest.raises(ValidationError):
        validate_program(program)


def test_validate_rejects_unknown_function_and_bad_arity():
    program = _kernel_with_body([ast.ExprStmt(ast.Call("mystery", []))])
    with pytest.raises(ValidationError):
        validate_program(program)
    program2 = _kernel_with_body([ast.ExprStmt(ast.Call("clamp", [ast.IntLiteral(1)]))])
    with pytest.raises(ValidationError):
        validate_program(program2)


def test_validate_rejects_break_outside_loop():
    program = _kernel_with_body([ast.BreakStmt(), ast.out_write(ast.IntLiteral(0))])
    with pytest.raises(ValidationError):
        validate_program(program)


def test_validate_rejects_unbound_kernel_buffer():
    program = _kernel_with_body([ast.out_write(ast.IntLiteral(1))], buffers=[])
    with pytest.raises(ValidationError):
        validate_program(program)


def test_validate_flags_barrier_under_thread_id_divergence():
    divergent = ast.IfStmt(
        ast.BinaryOp("==", ast.WorkItemExpr("get_global_id", 0), ast.IntLiteral(0)),
        ast.Block([ast.BarrierStmt()]),
    )
    program = _kernel_with_body([divergent, ast.out_write(ast.IntLiteral(0))])
    with pytest.raises(ValidationError) as err:
        validate_program(program)
    assert "divergence" in str(err.value)


def test_validate_allows_barrier_under_group_uniform_condition():
    uniform = ast.IfStmt(
        ast.BinaryOp("==", ast.WorkItemExpr("get_group_id", 0), ast.IntLiteral(0)),
        ast.Block([ast.BarrierStmt()]),
    )
    program = _kernel_with_body([uniform, ast.out_write(ast.IntLiteral(0))])
    assert validate_program(program) == []


def test_validate_non_strict_returns_diagnostics():
    program = _kernel_with_body([ast.out_write(ast.VarRef("ghost"))])
    diags = validate_program(program, strict=False)
    assert len(diags) == 1 and "ghost" in diags[0].message


def test_ubkind_enum_covers_paper_sources():
    names = {k.name for k in UBKind}
    assert {"DATA_RACE", "BARRIER_DIVERGENCE", "SIGNED_OVERFLOW", "DIVISION_BY_ZERO"} <= names
