"""Regression lock on the Table 3 outcome-severity ranking.

PR 1 fixed a bug where ``bf`` was missing from ``_OUTCOME_SEVERITY`` (build
failures ranked below clean passes).  This test asserts the complete order
``w > bf > c > to > ng > ok`` in one place, so any future edit to the
ranking -- or a new outcome code silently defaulting to the bottom -- fails
loudly rather than skewing the Table 3 worst-outcome aggregation and the
reduction signatures built on top of it.
"""

import itertools

from repro.testing.campaign import _OUTCOME_SEVERITY, worst_code
from repro.testing.emi_harness import EmiBaseResult

#: The paper's Table 3 legend, most severe first.
TABLE3_ORDER = ("w", "bf", "c", "to", "ng", "ok")


def test_severity_table_encodes_the_full_table3_order():
    for more, less in itertools.combinations(TABLE3_ORDER, 2):
        assert _OUTCOME_SEVERITY[more] > _OUTCOME_SEVERITY[less], (more, less)
    # The placeholder ranks strictly below everything real.
    assert all(_OUTCOME_SEVERITY["?"] < _OUTCOME_SEVERITY[c] for c in TABLE3_ORDER)
    # No stray codes: the table is exactly the legend plus the placeholder.
    assert set(_OUTCOME_SEVERITY) == set(TABLE3_ORDER) | {"?"}


def test_worst_code_follows_the_order_pairwise_and_overall():
    for more, less in itertools.combinations(TABLE3_ORDER, 2):
        assert worst_code([less, more]) == more
        assert worst_code([more, less]) == more
    assert worst_code(list(reversed(TABLE3_ORDER))) == "w"
    assert worst_code(["ok"]) == "ok"
    assert worst_code([]) == "?"
    # Unknown codes never outrank known ones.
    assert worst_code(["mystery", "to"]) == "to"


def _cell(**flags) -> EmiBaseResult:
    defaults = dict(
        config_name="config1",
        optimisations=True,
        variant_outcomes=[],
        distinct_values=1,
        bad_base=False,
        wrong_code=False,
        induced_build_failure=False,
        induced_crash=False,
        induced_timeout=False,
        stable=False,
    )
    defaults.update(flags)
    return EmiBaseResult(**defaults)


def test_emi_worst_outcome_mirrors_the_same_order():
    """``EmiBaseResult.worst_outcome`` must agree with the Table 3 ranking:
    each flag dominates everything ranked below it."""
    assert _cell(wrong_code=True, induced_build_failure=True, induced_crash=True,
                 induced_timeout=True, bad_base=True).worst_outcome == "w"
    assert _cell(induced_build_failure=True, induced_crash=True,
                 induced_timeout=True, bad_base=True).worst_outcome == "bf"
    assert _cell(induced_crash=True, induced_timeout=True,
                 bad_base=True).worst_outcome == "c"
    assert _cell(induced_timeout=True, bad_base=True).worst_outcome == "to"
    assert _cell(bad_base=True).worst_outcome == "ng"
    assert _cell().worst_outcome == "ok"
