"""Unit tests for the individual optimisation passes and AST rewriting."""

from repro.compiler import analysis, rewrite
from repro.compiler.passes import (
    ConstantFoldPass,
    DeadCodeEliminationPass,
    InlinePass,
    LoopUnrollPass,
    SimplifyPass,
)
from repro.compiler.pipeline import OptimisationLevel, Pipeline, default_pipeline
from repro.kernel_lang import ast, types as ty


def _wrap(statements, functions=None):
    kernel = ast.FunctionDecl(
        "entry", ty.VOID, [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))],
        ast.Block(statements), is_kernel=True,
    )
    return ast.Program(
        functions=list(functions or []) + [kernel],
        buffers=[ast.BufferSpec("out", ty.ULONG, 1, is_output=True)],
        launch=ast.LaunchSpec((1, 1, 1), (1, 1, 1)),
    )


def _kernel_stmts(program):
    return program.kernel().body.statements


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


def test_side_effect_analysis():
    pure = ast.Call("safe_add", [ast.lit(1), ast.lit(2)])
    atomic = ast.Call("atomic_inc", [ast.var("p")])
    user = ast.Call("helper", [])
    assert not analysis.expr_has_side_effects(pure)
    assert analysis.expr_has_side_effects(atomic)
    assert analysis.expr_has_side_effects(user)
    assert analysis.stmt_has_side_effects(ast.BarrierStmt())
    assert not analysis.stmt_has_side_effects(ast.DeclStmt("x", ty.INT, pure))


def test_variable_read_write_analysis():
    stmt = ast.AssignStmt(ast.IndexAccess(ast.var("a"), ast.var("i")), ast.var("b"))
    assert analysis.variables_read(stmt) == {"a", "i", "b"}
    assert analysis.variables_assigned(stmt) == {"a"}
    addr = ast.ExprStmt(ast.AddressOf(ast.var("x")))
    assert "x" in analysis.variables_assigned(addr)


def test_feature_detection_helpers():
    program = _wrap([ast.BarrierStmt(), ast.out_write(ast.lit(1))])
    assert analysis.uses_barriers(program)
    assert not analysis.uses_vectors(program)
    assert not analysis.uses_atomics(program)
    assert not analysis.uses_structs(program)


def test_rewrite_map_expr_bottom_up():
    expr = ast.BinaryOp("+", ast.lit(1), ast.BinaryOp("+", ast.lit(2), ast.lit(3)))

    def bump(e):
        if isinstance(e, ast.IntLiteral):
            return ast.IntLiteral(e.value + 10, e.type)
        return e

    rewritten = rewrite.map_expr(expr, bump)
    literals = [n.value for n in rewritten.walk() if isinstance(n, ast.IntLiteral)]
    assert sorted(literals) == [11, 12, 13]
    # Original untouched.
    assert sorted(n.value for n in expr.walk() if isinstance(n, ast.IntLiteral)) == [1, 2, 3]


def test_rewrite_stmt_fn_can_delete_and_replace():
    program = _wrap([
        ast.DeclStmt("x", ty.INT, ast.lit(1)),
        ast.out_write(ast.lit(2)),
    ])

    def drop_decls(stmt):
        if isinstance(stmt, ast.DeclStmt):
            return []
        return None

    rewritten = rewrite.rewrite_program(program, stmt_fn=drop_decls)
    assert len(_kernel_stmts(rewritten)) == 1
    assert len(_kernel_stmts(program)) == 2


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------


def test_constant_fold_binary_and_builtin():
    program = _wrap([
        ast.out_write(ast.BinaryOp("*", ast.lit(6), ast.lit(7))),
        ast.ExprStmt(ast.Call("safe_add", [ast.lit(1), ast.lit(2)])),
    ])
    folded = ConstantFoldPass().run(program)
    first = _kernel_stmts(folded)[0]
    assert isinstance(first.value, ast.IntLiteral) and first.value.value == 42
    second = _kernel_stmts(folded)[1]
    assert isinstance(second.expr, ast.IntLiteral) and second.expr.value == 3


def test_constant_fold_refuses_undefined_operations():
    program = _wrap([
        ast.out_write(ast.BinaryOp("/", ast.lit(1), ast.lit(0))),
    ])
    folded = ConstantFoldPass().run(program)
    assert isinstance(_kernel_stmts(folded)[0].value, ast.BinaryOp)
    overflow = _wrap([
        ast.out_write(ast.BinaryOp("+", ast.lit(ty.INT.max_value), ast.lit(1))),
    ])
    assert isinstance(_kernel_stmts(ConstantFoldPass().run(overflow))[0].value, ast.BinaryOp)


def test_constant_fold_cast_conditional_and_comparison():
    program = _wrap([
        ast.out_write(ast.Cast(ty.UCHAR, ast.lit(300))),
        ast.ExprStmt(ast.Conditional(ast.lit(1), ast.lit(5), ast.lit(9))),
        ast.ExprStmt(ast.BinaryOp("<", ast.lit(2), ast.lit(3))),
    ])
    folded = _kernel_stmts(ConstantFoldPass().run(program))
    assert folded[0].value.value == 44
    assert folded[1].expr.value == 5
    assert folded[2].expr.value == 1


# ---------------------------------------------------------------------------
# Simplification
# ---------------------------------------------------------------------------


def test_simplify_identities():
    program = _wrap([
        ast.out_write(ast.BinaryOp("+", ast.var("out"), ast.lit(0))),
        ast.ExprStmt(ast.Call("safe_mul", [ast.var("out"), ast.lit(1)])),
        ast.ExprStmt(ast.Call("safe_clamp", [ast.lit(7), ast.lit(5), ast.lit(0)])),
    ])
    simplified = _kernel_stmts(SimplifyPass().run(program))
    assert isinstance(simplified[0].value, ast.VarRef)
    assert isinstance(simplified[1].expr, ast.VarRef)
    assert isinstance(simplified[2].expr, ast.IntLiteral) and simplified[2].expr.value == 7


def test_simplify_keeps_effectful_comma_left_operand():
    effectful = ast.BinaryOp(",", ast.Call("atomic_inc", [ast.var("out")]), ast.lit(1))
    program = _wrap([ast.ExprStmt(effectful)])
    simplified = _kernel_stmts(SimplifyPass().run(program))
    assert isinstance(simplified[0].expr, ast.BinaryOp)


def test_simplify_preserves_integer_promotion_of_narrow_operands():
    """Regression (found by the test-case reducer dogfooding itself):
    ``(uchar)e ^ 0`` has promoted type int, so the shift amount of an
    enclosing ``safe_lshift`` clamps modulo 32; dropping the ``^ 0`` narrows
    the argument to uchar and the clamp becomes modulo 8.  The identity must
    not fire when it would narrow the type -- and must still fire when the
    operand's type provably matches the promoted result."""
    from repro.runtime.device import run_program

    narrow = ast.BinaryOp(
        "^", ast.Cast(ty.UCHAR, ast.group_linear_id()), ast.lit(0)
    )
    shift = ast.Call("safe_lshift", [narrow, ast.Call("min", [ast.lit(9), ast.lit(9)])])
    program = _wrap([ast.out_write(shift)])
    simplified = SimplifyPass().run(program)
    # The ^ 0 survives (dropping it would change the clamp width)...
    assert run_program(simplified).outputs == run_program(program).outputs
    kept = _kernel_stmts(simplified)[0].value.args[0]
    assert isinstance(kept, ast.BinaryOp) and kept.op == "^"
    # ...while the same identity on an int-typed operand still fires.
    wide = ast.BinaryOp("^", ast.Cast(ty.INT, ast.group_linear_id()), ast.lit(0))
    program_wide = _wrap([ast.out_write(ast.Call("safe_lshift", [wide, ast.lit(1)]))])
    kept_wide = _kernel_stmts(SimplifyPass().run(program_wide))[0].value.args[0]
    assert isinstance(kept_wide, ast.Cast)


def test_simplify_resolves_variable_types_from_scope():
    """The scope map lets identities on declared variables keep firing when
    the declared type already matches the promoted result, and blocks them
    when it does not."""
    program = _wrap([
        ast.DeclStmt("wide", ty.UINT, ast.lit(7)),
        ast.DeclStmt("narrow", ty.UCHAR, ast.lit(7)),
        ast.out_write(ast.BinaryOp("+", ast.var("wide"), ast.lit(0))),
        ast.out_write(ast.BinaryOp("+", ast.var("narrow"), ast.lit(0))),
    ])
    simplified = _kernel_stmts(SimplifyPass().run(program))
    assert isinstance(simplified[2].value, ast.VarRef)      # uint + 0 -> uint
    assert isinstance(simplified[3].value, ast.BinaryOp)    # uchar + 0 stays


# ---------------------------------------------------------------------------
# Dead-code elimination
# ---------------------------------------------------------------------------


def test_dce_removes_unreachable_and_unused():
    program = _wrap([
        ast.DeclStmt("unused", ty.INT, ast.lit(1)),
        ast.IfStmt(ast.lit(0), ast.Block([ast.BarrierStmt()])),
        ast.out_write(ast.lit(1)),
        ast.ReturnStmt(),
        ast.out_write(ast.lit(2)),
    ])
    cleaned = _kernel_stmts(DeadCodeEliminationPass().run(program))
    kinds = [type(s).__name__ for s in cleaned]
    assert "DeclStmt" not in kinds          # unused variable removed
    assert "IfStmt" not in kinds            # statically-false branch removed
    assert kinds.count("AssignStmt") == 1   # the statement after return is gone


def test_dce_keeps_live_barriers_and_used_variables():
    program = _wrap([
        ast.DeclStmt("x", ty.INT, ast.lit(1)),
        ast.BarrierStmt(),
        ast.out_write(ast.var("x")),
    ])
    cleaned = _kernel_stmts(DeadCodeEliminationPass().run(program))
    kinds = [type(s).__name__ for s in cleaned]
    assert kinds == ["DeclStmt", "BarrierStmt", "AssignStmt"]


def test_dce_folds_literal_true_if_into_branch():
    program = _wrap([
        ast.IfStmt(ast.lit(1), ast.Block([ast.out_write(ast.lit(7))]),
                   ast.Block([ast.out_write(ast.lit(9))])),
    ])
    cleaned = _kernel_stmts(DeadCodeEliminationPass().run(program))
    assert len(cleaned) == 1
    assert cleaned[0].value.value == 7


# ---------------------------------------------------------------------------
# Inlining and unrolling
# ---------------------------------------------------------------------------


def test_inline_single_return_function():
    helper = ast.FunctionDecl(
        "double_it", ty.INT, [ast.ParamDecl("v", ty.INT)],
        ast.Block([ast.ReturnStmt(ast.Call("safe_mul", [ast.var("v"), ast.lit(2)]))]),
    )
    program = _wrap([ast.out_write(ast.Call("double_it", [ast.lit(21)]))],
                    functions=[helper])
    inlined = InlinePass().run(program)
    value = _kernel_stmts(inlined)[0].value
    assert isinstance(value, ast.Call) and value.name == "safe_mul"


def test_inline_skips_effectful_arguments_and_complex_bodies():
    complex_helper = ast.FunctionDecl(
        "noisy", ty.INT, [ast.ParamDecl("v", ty.INT)],
        ast.Block([ast.DeclStmt("t", ty.INT, ast.var("v")), ast.ReturnStmt(ast.var("t"))]),
    )
    program = _wrap([ast.out_write(ast.Call("noisy", [ast.lit(1)]))],
                    functions=[complex_helper])
    inlined = InlinePass().run(program)
    assert isinstance(_kernel_stmts(inlined)[0].value, ast.Call)


def test_unroll_counted_loop():
    loop = ast.ForStmt(
        ast.DeclStmt("i", ty.INT, ast.lit(0)),
        ast.BinaryOp("<", ast.var("i"), ast.lit(3)),
        ast.AssignStmt(ast.var("i"), ast.lit(1), "+="),
        ast.Block([ast.AssignStmt(ast.var("acc"), ast.var("i"), "+=")]),
    )
    program = _wrap([ast.DeclStmt("acc", ty.INT, ast.lit(0)), loop,
                     ast.out_write(ast.var("acc"))])
    unrolled = LoopUnrollPass().run(program)
    assert not any(isinstance(s, ast.ForStmt) for s in _kernel_stmts(unrolled))


def test_unroll_skips_loops_with_barriers_or_large_trip_counts():
    barrier_loop = ast.ForStmt(
        ast.DeclStmt("i", ty.INT, ast.lit(0)),
        ast.BinaryOp("<", ast.var("i"), ast.lit(3)),
        ast.AssignStmt(ast.var("i"), ast.lit(1), "+="),
        ast.Block([ast.BarrierStmt()]),
    )
    big_loop = ast.ForStmt(
        ast.DeclStmt("i", ty.INT, ast.lit(0)),
        ast.BinaryOp("<", ast.var("i"), ast.lit(100)),
        ast.AssignStmt(ast.var("i"), ast.lit(1), "+="),
        ast.Block([]),
    )
    program = _wrap([barrier_loop, big_loop, ast.out_write(ast.lit(0))])
    unrolled = LoopUnrollPass().run(program)
    assert sum(isinstance(s, ast.ForStmt) for s in _kernel_stmts(unrolled)) == 2


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------


def test_pipeline_levels():
    assert default_pipeline(OptimisationLevel.NONE).passes == []
    full = default_pipeline(OptimisationLevel.FULL)
    assert len(full.passes) >= 5
    assert "constant-fold" in full.describe()
    assert OptimisationLevel.from_flag(True) is OptimisationLevel.FULL
    assert OptimisationLevel.from_flag(False) is OptimisationLevel.NONE


def test_pipeline_runs_passes_in_order():
    program = _wrap([
        ast.out_write(ast.BinaryOp("+", ast.BinaryOp("*", ast.lit(6), ast.lit(7)), ast.lit(0))),
    ])
    optimised = default_pipeline().run(program)
    value = _kernel_stmts(optimised)[0].value
    assert isinstance(value, ast.IntLiteral) and value.value == 42
