"""End-to-end tests for the automated test-case reduction subsystem.

These lock the subsystem's contract (see REDUCTION.md):

* a seeded corpus of >= 20 wrong-code / crash / timeout kernels shrinks by
  >= 70% median node count while every reduced kernel still reproduces its
  original outcome class;
* the hard UB guard: no candidate classified as undefined behaviour is ever
  accepted, and a UB-afflicted "original" refuses to reduce at all;
* determinism: the same (seed, kernel, predicate) produces an identical
  reduction, and the accepted-step trace replays without any harness;
* orchestration: candidate evaluation through serial and process
  ``WorkerPool`` backends produces byte-identical ``ReductionResult``s, and
  ``auto_reduce=`` campaigns attach identical summaries on both backends.
"""

import statistics

import pytest

from repro.generator import generate_kernel
from repro.generator.options import GeneratorOptions, Mode
from repro.kernel_lang import ast, types as ty
from repro.kernel_lang.printer import print_program
from repro.orchestration.jobs import (
    REDUCE_CHECK,
    REDUCE_KERNEL,
    CampaignJob,
    execute_job,
)
from repro.orchestration.pool import WorkerPool
from repro.reduction import (
    MismatchPredicate,
    PredicateSpec,
    Reducer,
    ReducerConfig,
    reduce_program,
    replay_trace,
)
from repro.reduction.corpus import (
    clean_config,
    crash_config,
    emi_parity_config,
    seeded_corpus,
    timeout_config,
    wrong_code_config,
)
from repro.runtime.device import run_program
from repro.testing.campaign import run_clsmith_campaign, run_emi_campaign

_FAST_OPTIONS = GeneratorOptions(
    min_total_threads=4,
    max_total_threads=12,
    max_group_size=4,
    max_statements=8,
    max_expr_depth=2,
)

_CORPUS_CONFIG = ReducerConfig(seed=1, max_evaluations=600, max_pass_evaluations=200)


def _ub_program() -> ast.Program:
    """A well-formed kernel whose execution is undefined (1/0)."""
    return ast.Program(
        functions=[
            ast.FunctionDecl(
                "entry",
                ty.VOID,
                [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))],
                ast.block(ast.out_write(ast.binop("/", ast.lit(1), ast.lit(0)))),
                is_kernel=True,
            )
        ],
        buffers=[ast.BufferSpec("out", ty.ULONG, 4, is_output=True)],
        launch=ast.LaunchSpec((4, 1, 1), (1, 1, 1)),
    )


# ---------------------------------------------------------------------------
# The headline property: a >= 20-kernel corpus shrinks >= 70% median
# ---------------------------------------------------------------------------


def test_corpus_shrinks_70_percent_median_preserving_outcome_class():
    corpus = seeded_corpus(per_class=7, options=_FAST_OPTIONS)
    assert len(corpus) >= 20
    ratios = []
    for program, config, expected_class in corpus:
        predicate = MismatchPredicate.from_program(program, config, True)
        assert predicate.expected_class == expected_class
        result = Reducer(_CORPUS_CONFIG).reduce(program, predicate)
        assert result.nodes_after < result.nodes_before
        assert result.tokens_after < result.tokens_before
        ratios.append(result.node_reduction)
        # The reduced kernel still reproduces the *same* outcome class...
        check = MismatchPredicate(
            config, True, expected_class, max_steps=predicate.max_steps
        )
        assert check(result.reduced), expected_class
        # ...and the reducer never traded the defect for undefined
        # behaviour: the reduced kernel is clean on the reference simulator.
        run_program(result.reduced, max_steps=500_000)
    assert statistics.median(ratios) >= 0.70, sorted(ratios)


# ---------------------------------------------------------------------------
# Determinism and replay
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode,seed", [(Mode.BASIC, 3), (Mode.VECTOR, 5), (Mode.ALL, 7)])
def test_reduction_is_deterministic(mode, seed):
    program = generate_kernel(mode, seed, options=_FAST_OPTIONS)

    def run_once():
        predicate = MismatchPredicate.from_program(program, wrong_code_config(), True)
        return Reducer(ReducerConfig(seed=9)).reduce(program, predicate)

    first, second = run_once(), run_once()
    assert print_program(first.reduced) == print_program(second.reduced)
    assert first.trace == second.trace
    assert first.evaluations == second.evaluations
    assert {n: s.as_dict() for n, s in first.pass_stats.items()} == {
        n: s.as_dict() for n, s in second.pass_stats.items()
    }


def test_trace_replays_to_the_reduced_kernel_without_a_harness():
    program = generate_kernel(Mode.BASIC, 13, options=_FAST_OPTIONS)
    predicate = MismatchPredicate.from_program(program, crash_config(), True)
    result = Reducer(ReducerConfig(seed=4)).reduce(program, predicate)
    assert result.trace, "expected at least one accepted step"
    replayed = replay_trace(program, result.trace, seed=4)
    assert print_program(replayed) == print_program(result.reduced)


# ---------------------------------------------------------------------------
# The hard UB guard
# ---------------------------------------------------------------------------


def test_ub_candidates_are_rejected_and_counted():
    program = generate_kernel(Mode.BASIC, 3, options=_FAST_OPTIONS)
    predicate = MismatchPredicate.from_program(program, wrong_code_config(), True)
    assert predicate(_ub_program()) is False
    assert predicate.stats.ub_rejections == 1
    assert predicate.stats.accepted == 0


def test_ub_original_refuses_to_reduce():
    with pytest.raises(ValueError):
        MismatchPredicate.from_program(_ub_program(), wrong_code_config(), True)


def test_emi_candidates_get_their_own_fingerprint():
    """Regression: a reduction candidate must not inherit the original
    kernel's ``emi_base_fingerprint`` -- fingerprint-keyed calibrated
    defects would keep firing for shrinks whose own code no longer triggers
    anything, so the candidate would 'reproduce' via carried metadata."""
    from repro.emi.variants import mark_base_fingerprint
    from repro.reduction.interestingness import refresh_base_fingerprint

    original = mark_base_fingerprint(
        generate_kernel(Mode.ALL, 1, options=_FAST_OPTIONS, emi_blocks=2)
    )
    stale = original.metadata["emi_base_fingerprint"]
    candidate = original.clone()
    del candidate.kernel().body.statements[0]  # different code, stale metadata
    assert candidate.metadata["emi_base_fingerprint"] == stale
    refreshed = refresh_base_fingerprint(candidate)
    assert refreshed.metadata["emi_base_fingerprint"] != stale
    # Unchanged code re-derives the identical fingerprint (the predicate
    # treats the original itself consistently).
    assert (
        refresh_base_fingerprint(original).metadata["emi_base_fingerprint"]
        == stale
    )


def test_invalid_candidates_are_rejected_statically():
    program = generate_kernel(Mode.BASIC, 3, options=_FAST_OPTIONS)
    predicate = MismatchPredicate.from_program(program, wrong_code_config(), True)
    broken = program.clone()
    broken.kernel().body.statements.insert(
        0, ast.ExprStmt(ast.var("no_such_variable"))
    )
    assert predicate(broken) is False
    assert predicate.stats.invalid_rejections == 1


# ---------------------------------------------------------------------------
# Orchestration: pool dispatch and campaign auto-triage
# ---------------------------------------------------------------------------


def test_pool_backends_produce_byte_identical_reductions():
    program = generate_kernel(Mode.BASIC, 11, options=_FAST_OPTIONS)
    spec = PredicateSpec(
        kind="mismatch", expected_class="w", target_index=0,
        target_optimisations=True,
    )
    config = ReducerConfig(seed=2, max_evaluations=300)
    results = {}
    for backend, parallelism in (("serial", 1), ("process", 2)):
        with WorkerPool(parallelism, backend=backend) as pool:
            results[backend] = reduce_program(
                program, config=config, pool=pool, spec=spec,
                configs=[wrong_code_config()],
            )
    serial, process = results["serial"], results["process"]
    assert serial.reduced_source == process.reduced_source
    assert serial.trace == process.trace
    assert serial.evaluations == process.evaluations
    assert {n: s.as_dict() for n, s in serial.pass_stats.items()} == {
        n: s.as_dict() for n, s in process.pass_stats.items()
    }


def test_reduce_jobs_execute_like_any_campaign_job():
    program = generate_kernel(Mode.BASIC, 3, options=_FAST_OPTIONS)
    spec = PredicateSpec(
        kind="mismatch", expected_class="w", target_index=0,
        target_optimisations=True,
    )
    common = dict(
        config_ids=(901,),
        config_overrides=(wrong_code_config(),),
        predicate_spec=spec,
        max_steps=500_000,
    )
    check = execute_job(
        CampaignJob(kind=REDUCE_CHECK, seed=0, program=program, **common)
    )
    assert check.accepted is True
    reduce = execute_job(
        CampaignJob(
            kind=REDUCE_KERNEL, seed=3, mode=Mode.BASIC.value,
            options=_FAST_OPTIONS, reduce_max_evaluations=200, **common,
        )
    )
    assert reduce.reduction is not None
    summary = reduce.reduction
    assert summary.nodes_after < summary.nodes_before
    assert summary.predicate_kind == "mismatch"
    assert "entry" in summary.reduced_source


def test_clsmith_auto_reduce_attaches_identical_summaries_on_both_backends():
    configs = [clean_config(911), clean_config(912), wrong_code_config()]

    def campaign(parallelism):
        return run_clsmith_campaign(
            configs,
            kernels_per_mode=2,
            modes=(Mode.BASIC,),
            options=_FAST_OPTIONS,
            auto_reduce=True,
            reduce_budget=200,
            parallelism=parallelism,
        )

    serial, parallel = campaign(None), campaign(2)
    assert serial.table_rows() == parallel.table_rows()
    assert len(serial.reductions) == 2  # every kernel is anomalous on 901
    assert len(parallel.reductions) == 2
    for left, right in zip(serial.reductions, parallel.reductions):
        assert left.reduced_source == right.reduced_source
        assert left.signature == right.signature
        assert left.evaluations == right.evaluations
        assert left.pass_attribution == right.pass_attribution
        assert left.node_reduction > 0
        # The attached reproducer preserves the exact failure signature.
        assert ("config901+", "w") in left.signature


def test_emi_auto_reduce_shrinks_anomalous_bases():
    from repro.testing.campaign import generate_emi_bases

    options = GeneratorOptions(
        min_total_threads=4, max_total_threads=12, max_group_size=4,
        max_statements=6, max_expr_depth=2,
    )
    bases = generate_emi_bases(2, seed=0, options=options)
    result = run_emi_campaign(
        [emi_parity_config()],
        bases=bases,
        variants_per_base=6,
        optimisation_levels=(False,),
        options=options,
        auto_reduce=True,
        reduce_budget=250,
    )
    anomalous = sum(
        1 for row in result.rows.values()
        if row["w"] or row["bf"] or row["c"] or row["to"]
    )
    assert anomalous >= 1
    assert result.reductions, "anomalous EMI base should have been reduced"
    for summary in result.reductions:
        assert summary.predicate_kind == "emi-family"
        assert summary.nodes_after < summary.nodes_before
        assert any(code == "w" for _, code in summary.signature)


def test_timeout_and_crash_classes_reduce_to_near_empty_kernels():
    program = generate_kernel(Mode.BASIC, 17, options=_FAST_OPTIONS)
    for factory in (crash_config, timeout_config):
        predicate = MismatchPredicate.from_program(program, factory(), True)
        result = Reducer(ReducerConfig(seed=0)).reduce(program, predicate)
        assert result.node_reduction > 0.9
        assert result.reduced.launch.total_threads == 1


# ---------------------------------------------------------------------------
# CLI entry point
# ---------------------------------------------------------------------------


def test_cli_exits_cleanly_when_there_is_nothing_to_reduce(capsys):
    from repro.reduction.cli import main

    # BASIC seed 1 passes on configuration 1: empty signature, exit code 1.
    code = main(["--mode", "BASIC", "--seed", "1", "--configs", "1",
                 "--max-steps", "200000"])
    captured = capsys.readouterr()
    assert code == 1
    assert "nothing to reduce" in captured.err


def test_cli_reduces_a_real_table1_anomaly(capsys):
    from repro.reduction.cli import main

    # BASIC seed 0 hits configuration 1's build-failure model (bf on 1-).
    code = main(["--mode", "BASIC", "--seed", "0", "--configs", "1",
                 "--max-steps", "200000", "--budget", "400", "--show-source"])
    captured = capsys.readouterr()
    assert code == 0
    assert "anomaly signature: config1-:bf" in captured.out
    assert "nodes :" in captured.out
    assert "kernel void entry" in captured.out
