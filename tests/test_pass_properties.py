"""Property-based tests: every optimisation pass must preserve semantics.

The property is checked differentially (paper section 3.2's voting idea turned
into a test): a generated kernel is executed unoptimised and after each pass /
the full pipeline, and all results must agree.  This is the central invariant
of the reproduction -- without it, wrong-code verdicts against the injected
bug models would be meaningless.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler.passes import (
    ConstantFoldPass,
    DeadCodeEliminationPass,
    InlinePass,
    LoopUnrollPass,
    SimplifyPass,
)
from repro.compiler.pipeline import default_pipeline
from repro.generator import Mode, generate_kernel
from repro.generator.options import GeneratorOptions
from repro.runtime.device import run_program

_FAST_OPTIONS = GeneratorOptions(
    min_total_threads=4,
    max_total_threads=12,
    max_group_size=4,
    max_statements=6,
    max_expr_depth=2,
)

_PASSES = [
    ConstantFoldPass(),
    SimplifyPass(),
    DeadCodeEliminationPass(),
    InlinePass(),
    LoopUnrollPass(),
]

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_each_pass_preserves_basic_kernel_semantics(seed):
    program = generate_kernel(Mode.BASIC, seed=seed, options=_FAST_OPTIONS)
    reference = run_program(program, max_steps=300_000).outputs
    for pass_ in _PASSES:
        transformed = pass_.run(program)
        assert run_program(transformed, max_steps=300_000).outputs == reference, pass_.name


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_full_pipeline_preserves_vector_kernel_semantics(seed):
    program = generate_kernel(Mode.VECTOR, seed=seed, options=_FAST_OPTIONS)
    reference = run_program(program, max_steps=300_000).outputs
    optimised = default_pipeline().run(program)
    assert run_program(optimised, max_steps=300_000).outputs == reference


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_full_pipeline_preserves_barrier_kernel_semantics(seed):
    program = generate_kernel(Mode.BARRIER, seed=seed, options=_FAST_OPTIONS)
    reference = run_program(program, max_steps=400_000).outputs
    optimised = default_pipeline().run(program)
    assert run_program(optimised, max_steps=400_000).outputs == reference


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_pipeline_is_idempotent_on_its_own_output(seed):
    program = generate_kernel(Mode.BASIC, seed=seed, options=_FAST_OPTIONS)
    once = default_pipeline().run(program)
    twice = default_pipeline().run(once)
    assert run_program(once, max_steps=300_000).outputs == run_program(
        twice, max_steps=300_000
    ).outputs


def test_pipeline_preserves_workload_semantics():
    from repro.workloads import race_free_workloads

    for workload in race_free_workloads():
        program = workload.program()
        reference = run_program(program).outputs
        optimised = default_pipeline().run(program)
        assert run_program(optimised).outputs == reference, workload.name
