"""Tests for the persistent campaign store and ``resume=``.

These lock the store's contract (see TRIAGE.md):

* job identities hash the *work*, not the origin: equal-valued jobs share
  results, any execution-relevant field change separates them;
* the JSONL codec round-trips every ``JobResult`` shape (tables, EMI cells,
  reduction summaries, bisections) to equal values;
* the file is append-only and idempotent: re-recording is a no-op, a
  reopened store sees everything, and a tail truncated by a kill (even
  mid-line) is repaired away on open;
* the acceptance property: a campaign killed mid-run and resumed from the
  store produces byte-identical tables, reductions, buckets and reports to
  an uninterrupted run, on both the serial and the process backend;
* cross-campaign dedup: reductions recorded by different campaigns bucket
  together through ``CampaignStore.reductions()``.
"""

import json

import pytest

from repro.generator.options import GeneratorOptions, Mode
from repro.orchestration.jobs import (
    CLSMITH_DIFFERENTIAL,
    CampaignJob,
    JobResult,
)
from repro.orchestration.pool import WorkerPool
from repro.reduction.corpus import clean_config, wrong_code_config
from repro.testing.campaign import run_clsmith_campaign
from repro.testing.emi_harness import EmiBaseResult
from repro.testing.outcomes import Outcome, OutcomeCounts
from repro.triage import CampaignStore, StoreBackedPool, bucket_reductions
from repro.triage.store import (
    decode_job_result,
    encode_job_result,
    job_identity,
)

_FAST_OPTIONS = GeneratorOptions(
    min_total_threads=4,
    max_total_threads=12,
    max_group_size=4,
    max_statements=8,
    max_expr_depth=2,
)


def _job(**overrides) -> CampaignJob:
    fields = dict(
        kind=CLSMITH_DIFFERENTIAL, seed=3, mode=Mode.BASIC.value,
        config_ids=(1, 19), optimisation_levels=(False, True),
        options=_FAST_OPTIONS, max_steps=300_000,
    )
    fields.update(overrides)
    return CampaignJob(**fields)


# ---------------------------------------------------------------------------
# Identities and the record codec
# ---------------------------------------------------------------------------


def test_job_identity_hashes_work_not_origin():
    assert job_identity(_job()) == job_identity(_job())
    base = job_identity(_job())
    assert job_identity(_job(seed=4)) != base
    assert job_identity(_job(engine="jit")) != base
    assert job_identity(_job(max_steps=400_000)) != base
    assert job_identity(_job(config_ids=(1,))) != base
    assert job_identity(_job(config_overrides=(wrong_code_config(), None))) != base


def test_job_result_round_trips_through_the_codec():
    counts = {("BASIC", "config1", True): OutcomeCounts(wrong_code=2, passed=3)}
    cell = EmiBaseResult(
        config_name="config9", optimisations=False,
        variant_outcomes=[Outcome.PASS, Outcome.WRONG_CODE, Outcome.TIMEOUT],
        distinct_values=2, bad_base=False, wrong_code=True,
        induced_build_failure=False, induced_crash=False,
        induced_timeout=True, stable=False,
    )
    result = JobResult(
        kind=CLSMITH_DIFFERENTIAL, seed=7, counts=counts, emi_cells=[cell],
        n_variants=4,
    )
    decoded = decode_job_result(
        json.loads(json.dumps(encode_job_result(result), sort_keys=True))
    )
    assert decoded.counts == counts
    assert decoded.emi_cells == [cell]
    assert decoded.n_variants == 4
    assert decoded.seed == 7
    assert decoded.reduction is None and decoded.bisection is None


def test_reduction_summaries_round_trip_with_programs(tmp_path):
    """A campaign's reduce-kernel record decodes to an equal summary whose
    program re-serialises identically (the resume byte-identity input)."""
    configs = [clean_config(911), clean_config(912), wrong_code_config()]
    result = run_clsmith_campaign(
        configs, kernels_per_mode=1, modes=(Mode.BASIC,), options=_FAST_OPTIONS,
        auto_reduce=True, reduce_budget=200,
        resume=str(tmp_path / "store.jsonl"),
    )
    assert len(result.reductions) == 1
    with CampaignStore(str(tmp_path / "store.jsonl")) as store:
        pairs = store.reductions()
        # Records are tagged with the issuing campaign's key, and filtering
        # by it finds them again.
        [campaign] = store.campaigns()
        assert all(
            record["campaign"] == campaign["key"]
            for record in store.records("reduction")
        )
        assert len(store.reductions(campaign=campaign["key"])) == 1
        assert store.reductions(campaign="no-such-campaign") == []
    assert len(pairs) == 1
    stored, context = pairs[0]
    original = result.reductions[0]
    assert stored.reduced_source == original.reduced_source
    assert stored.signature == original.signature
    assert stored.pass_attribution == original.pass_attribution
    assert stored.evaluations == original.evaluations
    assert context["config_ids"] == (911, 912, 901)
    assert context["optimisation_levels"] == (False, True)


# ---------------------------------------------------------------------------
# File behaviour: idempotence, reopen, truncation repair
# ---------------------------------------------------------------------------


def test_record_once_is_idempotent_and_survives_reopen(tmp_path):
    path = str(tmp_path / "store.jsonl")
    with CampaignStore(path) as store:
        assert store.record_once("campaign", "k1", {"meta": {"a": 1}}) is True
        assert store.record_once("campaign", "k1", {"meta": {"a": 2}}) is False
    with CampaignStore(path) as store:
        assert store.record_once("campaign", "k1", {"meta": {"a": 3}}) is False
        records = list(store.records("campaign"))
    assert len(records) == 1
    assert records[0]["meta"] == {"a": 1}
    assert len(open(path).read().splitlines()) == 1


def test_truncated_tail_is_repaired_on_open(tmp_path):
    path = str(tmp_path / "store.jsonl")
    with CampaignStore(path) as store:
        store.record_once("campaign", "k1", {"meta": {}})
        store.record_once("campaign", "k2", {"meta": {}})
    lines = open(path).read().splitlines(keepends=True)
    with open(path, "w") as handle:
        handle.writelines(lines[:1])
        handle.write(lines[1][: len(lines[1]) // 2])  # a kill mid-append
    with CampaignStore(path) as store:
        assert [r["key"] for r in store.records("campaign")] == ["k1"]
        # Appending after the repair lands on a clean line.
        store.record_once("campaign", "k3", {"meta": {}})
    with CampaignStore(path) as store:
        assert [r["key"] for r in store.records("campaign")] == ["k1", "k3"]


def test_newer_schema_records_are_skipped_not_misread(tmp_path):
    path = str(tmp_path / "store.jsonl")
    with open(path, "w") as handle:
        handle.write(json.dumps({"v": 999, "kind": "job", "key": "x"}) + "\n")
    with CampaignStore(path) as store:
        assert store.lookup_job("x") is None


class _CountingPool:
    """A WorkerPool stand-in that counts the jobs actually executed."""

    def __init__(self) -> None:
        self.inner = WorkerPool()
        self.executed = 0

    backend = "serial"
    parallelism = 1

    def run(self, jobs):
        jobs = list(jobs)
        self.executed += len(jobs)
        return self.inner.run(jobs)


def test_store_backed_pool_replays_instead_of_re_executing(tmp_path):
    job = _job()
    with CampaignStore(str(tmp_path / "store.jsonl")) as store:
        counting = _CountingPool()
        pool = StoreBackedPool(counting, store)
        first = pool.run([job])
        assert counting.executed == 1
        second = pool.run([job, job])
        assert counting.executed == 1  # both served from the store
    assert first[0].counts == second[0].counts == second[1].counts


# ---------------------------------------------------------------------------
# The acceptance property: kill mid-run, resume, byte-identical outputs
# ---------------------------------------------------------------------------


# parallelism=2 saturates the pool with the 2 anomalies (reduce-kernel
# dispatch); parallelism=4 leaves idle workers, taking the per-candidate
# reduce-check path -- both must resume byte-identically.
@pytest.mark.parametrize("parallelism", [None, 2, 4])
def test_killed_and_resumed_campaign_is_byte_identical(tmp_path, parallelism):
    configs = [clean_config(911), clean_config(912), wrong_code_config()]
    kwargs = dict(
        kernels_per_mode=2, modes=(Mode.BASIC,), options=_FAST_OPTIONS,
        auto_triage=True, reduce_budget=200, parallelism=parallelism,
    )
    full_path = str(tmp_path / "full.jsonl")
    part_path = str(tmp_path / "part.jsonl")

    full = run_clsmith_campaign(configs, resume=full_path, **kwargs)
    lines = open(full_path).read().splitlines(keepends=True)
    assert len(lines) > 4
    # Simulate the kill: the store is an append-only log, so dying mid-run
    # leaves a prefix -- possibly with a half-written final line.
    with open(part_path, "w") as handle:
        handle.writelines(lines[: len(lines) // 2])
        handle.write(lines[len(lines) // 2][:20])
    resumed = run_clsmith_campaign(configs, resume=part_path, **kwargs)

    assert resumed.table_rows() == full.table_rows()
    assert resumed.render() == full.render()
    assert [s.reduced_source for s in resumed.reductions] == [
        s.reduced_source for s in full.reductions
    ]
    assert [s.evaluations for s in resumed.reductions] == [
        s.evaluations for s in full.reductions
    ]
    assert [b.key for b in resumed.triage.buckets] == [
        b.key for b in full.triage.buckets
    ]
    assert resumed.triage.render_markdown() == full.triage.render_markdown()


def test_killed_and_resumed_emi_campaign_is_byte_identical(tmp_path):
    """The EMI entry point's resume path: caller-supplied bases travel by
    value, so job identities key on the program fingerprint."""
    from repro.reduction.corpus import emi_parity_config
    from repro.testing.campaign import generate_emi_bases, run_emi_campaign

    options = GeneratorOptions(
        min_total_threads=4, max_total_threads=12, max_group_size=4,
        max_statements=6, max_expr_depth=2,
    )
    bases = generate_emi_bases(2, seed=0, options=options)
    kwargs = dict(bases=bases, variants_per_base=6, optimisation_levels=(False,),
                  options=options, auto_triage=True, reduce_budget=250)
    full_path = str(tmp_path / "full.jsonl")
    part_path = str(tmp_path / "part.jsonl")
    full = run_emi_campaign([emi_parity_config()], resume=full_path, **kwargs)
    lines = open(full_path).read().splitlines(keepends=True)
    with open(part_path, "w") as handle:
        handle.writelines(lines[: len(lines) // 2])
    resumed = run_emi_campaign([emi_parity_config()], resume=part_path, **kwargs)
    assert resumed.rows == full.rows
    assert resumed.render() == full.render()
    assert resumed.triage.render_markdown() == full.triage.render_markdown()
    assert [b.culprit.label for b in full.triage.buckets] == [
        "wrong-code@synthetic-emi-parity"
    ]


def test_resume_without_interruption_replays_everything(tmp_path):
    configs = [clean_config(911), clean_config(912), wrong_code_config()]
    kwargs = dict(kernels_per_mode=1, modes=(Mode.BASIC,),
                  options=_FAST_OPTIONS, auto_reduce=True, reduce_budget=150)
    path = str(tmp_path / "store.jsonl")
    first = run_clsmith_campaign(configs, resume=path, **kwargs)
    size_after_first = len(open(path).read().splitlines())
    second = run_clsmith_campaign(configs, resume=path, **kwargs)
    # A complete replay appends nothing and reproduces the run exactly --
    # including the surfaced cache counters, whose deltas replay from the
    # job and reduction records.
    assert len(open(path).read().splitlines()) == size_after_first
    assert second.render() == first.render()
    assert [s.reduced_source for s in second.reductions] == [
        s.reduced_source for s in first.reductions
    ]
    assert second.cache_stats.as_dict() == first.cache_stats.as_dict()
    assert second.prepared_stats.as_dict() == first.prepared_stats.as_dict()


# ---------------------------------------------------------------------------
# Cross-campaign dedup
# ---------------------------------------------------------------------------


def test_bucket_aware_scheduling_skips_known_anomalies(tmp_path):
    """A triaging campaign must not re-reduce an anomaly another campaign
    already reduced: the stored representative attaches instead.

    Campaign B runs with ``reduce_budget=1`` -- far too small to reproduce
    campaign A's reduction -- so B's seed-0 summary matching A's
    byte-for-byte (with ``evaluations`` impossible under B's budget) proves
    the reduction was attached from the store, not re-run.  B's genuinely
    new seed-1 anomaly still reduces (within its tiny budget) and records.
    """
    configs = [clean_config(911), clean_config(912), wrong_code_config()]
    path = str(tmp_path / "store.jsonl")
    shared = dict(modes=(Mode.BASIC,), options=_FAST_OPTIONS, auto_triage=True,
                  seed=0, resume=path)
    first = run_clsmith_campaign(
        configs, kernels_per_mode=1, reduce_budget=200, **shared
    )
    assert len(first.reductions) == 1
    assert first.reductions[0].evaluations > 1
    second = run_clsmith_campaign(
        configs, kernels_per_mode=2, reduce_budget=1, **shared
    )
    assert len(second.reductions) == 2
    attached, fresh = second.reductions
    assert attached.reduced_source == first.reductions[0].reduced_source
    assert attached.evaluations == first.reductions[0].evaluations > 1
    assert fresh.evaluations <= 1
    with CampaignStore(path) as store:
        campaigns = [record["key"] for record in store.campaigns()]
        assert len(campaigns) == 2
        by_campaign = {key: 0 for key in campaigns}
        for record in store.records("reduction"):
            by_campaign[record["campaign"]] += 1
        # One reduction record per campaign: B recorded only its new
        # anomaly, the skipped one stays owned by A.
        assert sorted(by_campaign.values()) == [1, 1]
        anomalies = list(store.records("anomaly"))
    assert len(anomalies) == 2
    assert all("reduction_key" in record for record in anomalies)
    # The dedup still buckets the shared reproducer once across campaigns.
    assert second.triage.n_buckets >= 1


def test_bucket_aware_skip_does_not_break_resume(tmp_path):
    """Skip decisions ignore the campaign's *own* anomaly records, so a
    killed-and-resumed triage campaign cannot skip reductions its first
    attempt already recorded -- the resumed output stays byte-identical."""
    configs = [clean_config(911), clean_config(912), wrong_code_config()]
    kwargs = dict(kernels_per_mode=1, modes=(Mode.BASIC,), options=_FAST_OPTIONS,
                  auto_triage=True, reduce_budget=200)
    full_path = str(tmp_path / "full.jsonl")
    part_path = str(tmp_path / "part.jsonl")
    full = run_clsmith_campaign(configs, resume=full_path, **kwargs)
    lines = open(full_path).read().splitlines(keepends=True)
    # Keep everything up to and including the anomaly/reduction records'
    # neighbourhood: even a prefix holding the anomaly record must replay
    # (not skip) the reduction, because it belongs to this campaign.
    with open(part_path, "w") as handle:
        handle.writelines(lines[:-1])
    resumed = run_clsmith_campaign(configs, resume=part_path, **kwargs)
    assert resumed.render() == full.render()
    assert [s.reduced_source for s in resumed.reductions] == [
        s.reduced_source for s in full.reductions
    ]
    assert resumed.triage.render_markdown() == full.triage.render_markdown()


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------


def test_compact_on_clean_store_is_byte_identical(tmp_path):
    """A log with no superseded records compacts to the very same bytes,
    and the compacted store still resumes a campaign as a full replay."""
    configs = [clean_config(911), clean_config(912), wrong_code_config()]
    kwargs = dict(kernels_per_mode=1, modes=(Mode.BASIC,),
                  options=_FAST_OPTIONS, auto_reduce=True, reduce_budget=150)
    path = str(tmp_path / "store.jsonl")
    first = run_clsmith_campaign(configs, resume=path, **kwargs)
    before = open(path, "rb").read()
    with CampaignStore(path) as store:
        assert store.compact() == 0
    assert open(path, "rb").read() == before
    second = run_clsmith_campaign(configs, resume=path, **kwargs)
    assert open(path, "rb").read() == before  # replay appends nothing
    assert second.render() == first.render()


def test_compact_drops_superseded_and_damaged_records(tmp_path):
    path = str(tmp_path / "store.jsonl")
    with CampaignStore(path) as store:
        store.record_once("campaign", "k1", {"meta": {"a": 1}})
        store.record_once("campaign", "k2", {"meta": {}})
    clean = open(path, "rb").read()
    # Simulate a supersede: a later occurrence of k1 (as a crashed writer or
    # manual merge might produce).  The loaded index serves the *last*
    # occurrence, so compaction must keep that record -- at k1's original
    # position -- and drop the stale first line.
    superseded = json.dumps(
        {"v": 1, "kind": "campaign", "key": "k1", "meta": {"a": 2}},
        sort_keys=True, separators=(",", ":"),
    )
    with open(path, "a") as handle:
        handle.write(superseded + "\n")
        handle.write('{"v": 1, "kind": "campaign", "key"')  # torn tail
    with CampaignStore(path) as store:
        # The torn tail is already repaired away at open; compaction then
        # drops the stale first occurrence of k1.
        assert store.compact() == 1
        records = list(store.records("campaign"))
    assert [record["key"] for record in records] == ["k1", "k2"]
    assert records[0]["meta"] == {"a": 2}
    lines = open(path).read().splitlines()
    assert len(lines) == 2
    assert lines[0] == superseded
    # Compacting again is a fixpoint: nothing further to drop.
    with CampaignStore(path) as store:
        assert store.compact() == 0
    # An exact duplicate line compacts back to the clean bytes.
    with open(path, "w") as handle:
        handle.write(clean.decode("utf-8"))
        handle.write(clean.decode("utf-8").splitlines(keepends=True)[0])
    with CampaignStore(path) as store:
        assert store.compact() == 1
    assert open(path, "rb").read() == clean


def test_compact_preserves_newer_schema_records_verbatim(tmp_path):
    """Forward compatibility: records a newer writer appended (which this
    reader skips) must survive compaction untouched."""
    path = str(tmp_path / "store.jsonl")
    future = json.dumps({"v": 999, "kind": "job", "key": "x", "payload": [1]})
    with CampaignStore(path) as store:
        store.record_once("campaign", "k1", {"meta": {}})
    with open(path, "a") as handle:
        handle.write(future + "\n")
    with CampaignStore(path) as store:
        assert store.compact() == 0
    assert future in open(path).read().splitlines()


def test_cli_compact_flag_compacts_and_exits(tmp_path, capsys):
    from repro.triage.cli import main

    path = str(tmp_path / "store.jsonl")
    with CampaignStore(path) as store:
        store.record_once("campaign", "k1", {"meta": {}})
    line = open(path).read()
    with open(path, "a") as handle:
        handle.write(line)  # duplicate to drop
    assert main(["--store", path, "--compact"]) == 0
    assert "dropped 1 record(s), kept 1" in capsys.readouterr().err
    assert open(path).read() == line


def test_cross_campaign_dedup_merges_buckets_from_two_campaigns(tmp_path):
    configs = [clean_config(911), clean_config(912), wrong_code_config()]
    path = str(tmp_path / "store.jsonl")
    kwargs = dict(kernels_per_mode=1, modes=(Mode.BASIC,),
                  options=_FAST_OPTIONS, auto_reduce=True, reduce_budget=200)
    run_clsmith_campaign(configs, seed=0, resume=path, **kwargs)
    run_clsmith_campaign(configs, seed=50, resume=path, **kwargs)
    with CampaignStore(path) as store:
        campaigns = store.campaigns()
        pairs = store.reductions()
    assert len(campaigns) == 2
    assert len(pairs) == 2
    buckets = bucket_reductions([summary for summary, _ in pairs])
    # Different campaign seeds, same injected defect, same minimal
    # reproducer: one bucket spanning both campaigns.
    assert len(buckets) == 1
    assert buckets[0].occurrences == 2
    assert sorted(m.seed for m in buckets[0].members) == [0, 50]
