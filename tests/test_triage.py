"""Tests for the bug triage subsystem: bucketing, bisection, campaigns.

These lock the subsystem's contract (see TRIAGE.md):

* bucket fingerprints are invariant under variable/function renaming, under
  the kernel-seed metadata, and under pretty-print round trips -- and
  distinct injected defect configurations never collide on the 21-kernel
  synthetic corpus;
* ground truth: on the synthetic defect corpus, bucketing clusters
  anomalies 1:1 with the injected defect configurations (no merged or
  split buckets) and bisection attributes every bucket to the correct
  injected bug model;
* pass bisection blames a deliberately broken optimisation pass planted in
  the schedule;
* campaign integration: ``auto_triage=`` attaches identical buckets,
  culprits and reports on the serial and process backends, for both the
  CLsmith and the EMI entry points.
"""

import dataclasses

from repro.compiler.passes import (
    ConstantFoldPass,
    DeadCodeEliminationPass,
    SimplifyPass,
)
from repro.compiler.passes.base import Pass
from repro.generator import generate_kernel
from repro.generator.options import GeneratorOptions, Mode
from repro.kernel_lang import ast, types as ty
from repro.reduction import (
    MismatchPredicate,
    PredicateSpec,
    Reducer,
    ReducerConfig,
    ReductionSummary,
)
from repro.reduction.corpus import (
    clean_config,
    emi_parity_config,
    seeded_corpus,
    wrong_code_config,
)
from repro.testing.campaign import run_clsmith_campaign, run_emi_campaign
from repro.testing.outcomes import cell_label
from repro.triage import (
    attribute_culprit,
    bisect_passes,
    bucket_reductions,
    bug_fingerprint,
    canonical_source,
)

_FAST_OPTIONS = GeneratorOptions(
    min_total_threads=4,
    max_total_threads=12,
    max_group_size=4,
    max_statements=8,
    max_expr_depth=2,
)


def _renamed(program: ast.Program) -> ast.Program:
    """An independently alpha-renamed copy: every function, parameter,
    local and buffer name gets a ``_r`` suffix (injective, so scoping is
    preserved without any cleverness)."""
    clone = program.clone()
    function_names = {fn.name for fn in clone.functions}
    for fn in clone.functions:
        scoped = {param.name for param in fn.params}
        if fn.body is not None:
            scoped |= {
                node.name for node in fn.body.walk()
                if isinstance(node, ast.DeclStmt)
            }
            for node in fn.body.walk():
                if isinstance(node, ast.DeclStmt):
                    node.name += "_r"
                elif isinstance(node, ast.VarRef) and node.name in scoped:
                    node.name += "_r"
                elif isinstance(node, ast.Call) and node.name in function_names:
                    node.name += "_r"
        for param in fn.params:
            param.name += "_r"
        fn.name += "_r"
    kernel_params = {buf.name for buf in clone.buffers}
    for buf in clone.buffers:
        buf.name += "_r"
    clone.kernel_name += "_r"
    scalar_args = clone.metadata.get("scalar_args")
    if isinstance(scalar_args, dict):
        clone.metadata["scalar_args"] = {
            (name + "_r" if name in kernel_params else name): value
            for name, value in scalar_args.items()
        }
    return clone


_SIG = (("config901+", "w"),)


# ---------------------------------------------------------------------------
# Fingerprint invariance properties
# ---------------------------------------------------------------------------


def test_fingerprint_invariant_under_renaming_seed_and_round_trips():
    for mode, seed in ((Mode.BASIC, 3), (Mode.VECTOR, 5), (Mode.ALL, 7)):
        program = generate_kernel(mode, seed, options=_FAST_OPTIONS)
        fingerprint = bug_fingerprint(program, _SIG, mode.value)
        # Variable / function / buffer renaming.
        assert bug_fingerprint(_renamed(program), _SIG, mode.value) == fingerprint
        assert canonical_source(_renamed(program)) == canonical_source(program)
        # Kernel seed (and any other generator provenance) lives in
        # metadata; fingerprints must not see it.
        reseeded = program.clone()
        reseeded.metadata["seed"] = 999_999
        reseeded.metadata["mode"] = "SOMETHING-ELSE"
        assert bug_fingerprint(reseeded, _SIG, mode.value) == fingerprint
        # Statement-order-preserving pretty-print round trips: cloning and
        # re-printing is a fixpoint of the canonical form.
        assert bug_fingerprint(program.clone(), _SIG, mode.value) == fingerprint
        assert canonical_source(program.clone()) == canonical_source(program)


def test_fingerprint_distinguishes_signature_mode_and_shape():
    program = generate_kernel(Mode.BASIC, 3, options=_FAST_OPTIONS)
    base = bug_fingerprint(program, _SIG, "BASIC")
    assert bug_fingerprint(program, (("config902+", "c"),), "BASIC") != base
    assert bug_fingerprint(program, _SIG, "VECTOR") != base
    edited = program.clone()
    edited.kernel().body.statements.insert(0, ast.out_write(ast.lit(7)))
    assert bug_fingerprint(edited, _SIG, "BASIC") != base


def test_distinct_defect_configs_never_collide_on_the_21_kernel_corpus():
    corpus = seeded_corpus(per_class=7, options=_FAST_OPTIONS)
    assert len(corpus) == 21
    by_config = {}
    for program, config, code in corpus:
        signature = ((cell_label(config.name, True), code),)
        fingerprint = bug_fingerprint(
            program, signature, program.metadata.get("mode", ""), "mismatch"
        )
        by_config.setdefault(config.config_id, set()).add(fingerprint)
    config_ids = sorted(by_config)
    for i, left in enumerate(config_ids):
        for right in config_ids[i + 1:]:
            assert not (by_config[left] & by_config[right]), (left, right)
    # Even byte-identical source never collides across defect signatures.
    program = corpus[0][0]
    fingerprints = {
        bug_fingerprint(program, ((cell_label(config.name, True), code),),
                        "BASIC", "mismatch")
        for _, config, code in (corpus[0], corpus[7], corpus[14])
    }
    assert len(fingerprints) == 3


# ---------------------------------------------------------------------------
# Bucketing mechanics
# ---------------------------------------------------------------------------


def _summary(program, seed, nodes, tokens, signature=_SIG, mode="BASIC"):
    return ReductionSummary(
        seed=seed, mode=mode, predicate_kind="mismatch",
        signature=signature, nodes_before=nodes * 10, nodes_after=nodes,
        tokens_before=tokens * 10, tokens_after=tokens, evaluations=5,
        steps=2, budget_exhausted=False, pass_attribution={},
        reduced_source="", reduced_program=program,
    )


def test_bucketing_picks_smallest_representative_and_is_order_independent():
    program = generate_kernel(Mode.BASIC, 3, options=_FAST_OPTIONS)
    big = _summary(program, seed=1, nodes=20, tokens=50)
    small = _summary(_renamed(program), seed=2, nodes=10, tokens=30)
    other = _summary(program, seed=3, nodes=5, tokens=9,
                     signature=(("config902-", "c"),))
    forward = bucket_reductions([big, small, other])
    backward = bucket_reductions([other, small, big])
    assert [b.key for b in forward] == [b.key for b in backward]
    assert len(forward) == 2
    # Severity order: the w bucket precedes the c bucket.
    assert [b.worst_code for b in forward] == ["w", "c"]
    w_bucket = forward[0]
    assert w_bucket.occurrences == 2
    assert w_bucket.representative is small  # fewest nodes wins
    assert [m.seed for m in w_bucket.members] == [1, 2]


# ---------------------------------------------------------------------------
# Ground truth: 1:1 clustering + correct attribution on the corpus
# ---------------------------------------------------------------------------


def test_corpus_buckets_one_to_one_with_injected_defects_and_bisect():
    corpus = seeded_corpus(per_class=3, modes=(Mode.BASIC,),
                           options=_FAST_OPTIONS)
    reducer = Reducer(
        ReducerConfig(seed=1, max_evaluations=600, max_pass_evaluations=200)
    )
    summaries = []
    expected_culprits = {}
    configs_by_name = {}
    for program, config, code in corpus:
        predicate = MismatchPredicate.from_program(program, config, True)
        result = reducer.reduce(program, predicate)
        signature = ((cell_label(config.name, True), code),)
        summaries.append(
            result.summary(
                seed=program.metadata.get("seed", 0), mode="BASIC",
                predicate_kind="mismatch", signature=signature,
            )
        )
        expected_culprits[signature] = config.bug_models[0].name
        configs_by_name[config.name] = config

    buckets = bucket_reductions(summaries)
    # 1:1 with the injected defect configurations: no merged buckets (three
    # distinct defects -> three buckets) and no split buckets (every
    # defect's three anomalies collapse into one).
    assert len(buckets) == 3
    assert sorted(b.occurrences for b in buckets) == [3, 3, 3]
    assert {b.signature for b in buckets} == set(expected_culprits)

    # Bisection attributes every bucket to its injected defect model.
    correct = 0
    for bucket in buckets:
        config = configs_by_name[bucket.signature[0][0].rstrip("+-")]
        spec = PredicateSpec(
            kind="mismatch", signature=bucket.signature,
            expected_class=bucket.worst_code, target_index=0,
            target_optimisations=True,
        )
        verdict = attribute_culprit(
            bucket.representative.reduced_program, spec, [config]
        )
        assert verdict.kind == "bugmodel"
        assert verdict.verified
        if verdict.culprit == expected_culprits[bucket.signature]:
            correct += 1
    assert correct == len(buckets)  # acceptance asks >= 90%; this is 100%


# ---------------------------------------------------------------------------
# Bisection mechanics
# ---------------------------------------------------------------------------


def _minimal_wrong_code_program() -> ast.Program:
    return ast.Program(
        functions=[
            ast.FunctionDecl(
                "entry",
                ty.VOID,
                [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))],
                ast.block(ast.out_write(ast.lit(1))),
                is_kernel=True,
            )
        ],
        buffers=[ast.BufferSpec("out", ty.ULONG, 4, is_output=True)],
        launch=ast.LaunchSpec((4, 1, 1), (1, 1, 1)),
    )


def test_bisection_finds_the_culprit_among_decoy_models():
    from repro.platforms.bugmodels import (
        AlteraVectorInStructBug,
        AnonGpuGroupIdMiscompile,
        IntelSizeTMixRejection,
    )
    from repro.reduction.corpus import XorOutStoreBug

    # Three decoys that cannot fire on the minimal kernel (no structs, no
    # helpers, no int/size_t mixes) around the real culprit.
    config = dataclasses.replace(
        wrong_code_config(),
        bug_models=[
            AlteraVectorInStructBug(),
            IntelSizeTMixRejection(),
            XorOutStoreBug(),
            AnonGpuGroupIdMiscompile(),
        ],
    )
    spec = PredicateSpec(
        kind="mismatch", signature=_SIG, expected_class="w",
        target_index=0, target_optimisations=True,
    )
    verdict = attribute_culprit(_minimal_wrong_code_program(), spec, [config])
    assert verdict.kind == "bugmodel"
    assert verdict.culprit == "synthetic-xor-out-store"
    assert verdict.label == "wrong-code@synthetic-xor-out-store"
    assert verdict.verified
    assert verdict.config_name == "config901"
    assert verdict.steps >= 4  # full + empty + binary search + singleton


def test_bisection_reports_unknown_when_nothing_reproduces():
    spec = PredicateSpec(
        kind="mismatch", signature=(("config910+", "w"),), expected_class="w",
        target_index=0, target_optimisations=True,
    )
    verdict = attribute_culprit(
        _minimal_wrong_code_program(), spec, [clean_config(910)]
    )
    assert verdict.kind == "unknown"
    assert verdict.label == "wrong-code@unknown"
    assert not verdict.verified


class _BrokenXorPass(Pass):
    """A deliberately miscompiling optimisation pass for bisection tests."""

    name = "broken-xor"

    def run(self, program: ast.Program) -> ast.Program:
        from repro.compiler import rewrite

        def flip(stmt: ast.Stmt):
            if (
                isinstance(stmt, ast.AssignStmt)
                and isinstance(stmt.target, ast.IndexAccess)
                and isinstance(stmt.target.base, ast.VarRef)
                and stmt.target.base.name == "out"
            ):
                return [
                    ast.AssignStmt(
                        stmt.target.clone(),
                        ast.BinaryOp("^", stmt.value.clone(), ast.IntLiteral(1)),
                        stmt.op,
                    )
                ]
            return None

        return rewrite.rewrite_program(program, stmt_fn=flip)


def test_pass_bisection_blames_the_planted_broken_pass():
    schedule = [
        ConstantFoldPass(),
        SimplifyPass(),
        _BrokenXorPass(),
        DeadCodeEliminationPass(),
    ]
    program = generate_kernel(Mode.BASIC, 3, options=_FAST_OPTIONS)
    culprit, steps = bisect_passes(
        program, config=None, expected_class="w", passes=schedule
    )
    assert culprit == "broken-xor"
    assert steps >= 3  # baseline + full schedule + at least one probe


def test_pass_bisection_declines_a_clean_schedule():
    program = generate_kernel(Mode.BASIC, 3, options=_FAST_OPTIONS)
    culprit, _ = bisect_passes(program, config=None, expected_class="w")
    assert culprit is None


# ---------------------------------------------------------------------------
# Campaign integration: auto_triage on both entry points, both backends
# ---------------------------------------------------------------------------


def test_clsmith_auto_triage_serial_equals_parallel():
    configs = [clean_config(911), clean_config(912), wrong_code_config()]

    def campaign(parallelism):
        return run_clsmith_campaign(
            configs,
            kernels_per_mode=2,
            modes=(Mode.BASIC,),
            options=_FAST_OPTIONS,
            auto_triage=True,
            reduce_budget=200,
            parallelism=parallelism,
        )

    # parallelism=3 > 2 anomalies: the process backend takes the
    # per-candidate dispatch path (anomalies < workers), the strongest
    # byte-identity case.  The saturated reduce-kernel path is covered by
    # tests/test_reduction.py.
    serial, parallel = campaign(None), campaign(3)
    assert serial.table_rows() == parallel.table_rows()
    # auto_triage implies auto_reduce; summaries stay byte-identical even
    # though the process backend dispatches per-candidate reduce-check jobs.
    assert [s.reduced_source for s in serial.reductions] == [
        s.reduced_source for s in parallel.reductions
    ]
    assert [s.evaluations for s in serial.reductions] == [
        s.evaluations for s in parallel.reductions
    ]
    assert serial.triage is not None and parallel.triage is not None
    assert serial.triage.render_markdown() == parallel.triage.render_markdown()
    assert [b.key for b in serial.triage.buckets] == [
        b.key for b in parallel.triage.buckets
    ]
    # Both seeds reduced to the same minimal wrong-code kernel: one bucket,
    # two occurrences, attributed to the injected miscompiler.
    bucket = serial.triage.buckets[0]
    assert serial.triage.n_buckets == 1
    assert bucket.occurrences == 2
    assert bucket.culprit.label == "wrong-code@synthetic-xor-out-store"
    assert bucket.culprit.verified


def test_emi_auto_triage_attributes_the_parity_miscompiler():
    from repro.testing.campaign import generate_emi_bases

    options = GeneratorOptions(
        min_total_threads=4, max_total_threads=12, max_group_size=4,
        max_statements=6, max_expr_depth=2,
    )
    bases = generate_emi_bases(2, seed=0, options=options)
    result = run_emi_campaign(
        [emi_parity_config()],
        bases=bases,
        variants_per_base=6,
        optimisation_levels=(False,),
        options=options,
        auto_triage=True,
        reduce_budget=250,
    )
    assert result.reductions
    assert result.triage is not None and result.triage.n_buckets >= 1
    report = result.triage.render_markdown()
    assert "## Bucket 1:" in report
    for bucket in result.triage.buckets:
        assert bucket.predicate_kind == "emi-family"
        assert bucket.culprit is not None
        assert bucket.culprit.label.endswith("@synthetic-emi-parity")
        assert bucket.culprit.kind == "bugmodel"
