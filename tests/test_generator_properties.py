"""Property-based tests for the central claims about generated kernels
(paper section 4): every generated kernel is free of undefined behaviour,
free of data races, and produces a result that is independent of the thread
interleaving and of the optimisation level.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler import compile_program
from repro.generator import Mode, generate_kernel
from repro.generator.options import ALL_MODES, GeneratorOptions
from repro.runtime.device import run_program
from repro.runtime.scheduler import ScheduleOrder

_FAST = GeneratorOptions(min_total_threads=4, max_total_threads=16, max_group_size=4,
                         max_statements=6)

_SETTINGS = settings(max_examples=8, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=50_000),
       mode=st.sampled_from(list(ALL_MODES)))
def test_generated_kernels_are_race_free_and_well_defined(seed, mode):
    program = generate_kernel(mode, seed=seed, options=_FAST)
    # check_races=True raises on both data races and any undefined behaviour.
    result = run_program(program, check_races=True, max_steps=400_000)
    assert result.outputs["out"]


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=50_000),
       mode=st.sampled_from([Mode.BARRIER, Mode.ATOMIC_SECTION, Mode.ATOMIC_REDUCTION,
                             Mode.ALL]))
def test_communicating_kernels_are_schedule_independent(seed, mode):
    program = generate_kernel(mode, seed=seed, options=_FAST)
    baseline = run_program(program, max_steps=400_000).outputs
    for order, sched_seed in ((ScheduleOrder.REVERSED, 0), (ScheduleOrder.RANDOM, 13),
                              (ScheduleOrder.RANDOM, 14)):
        other = run_program(program, schedule_order=order, schedule_seed=sched_seed,
                            max_steps=400_000).outputs
        assert other == baseline


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=50_000),
       mode=st.sampled_from(list(ALL_MODES)))
def test_optimisation_level_does_not_change_results(seed, mode):
    program = generate_kernel(mode, seed=seed, options=_FAST)
    unoptimised = compile_program(program, optimisations=False).run(max_steps=400_000)
    optimised = compile_program(program, optimisations=True).run(max_steps=400_000)
    assert unoptimised.outputs == optimised.outputs


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_emi_base_and_inverted_dead_array_both_well_defined(seed):
    from repro.emi import invert_dead_array

    program = generate_kernel(Mode.BASIC, seed=seed, options=_FAST, emi_blocks=2)
    normal = run_program(program, check_races=True, max_steps=400_000)
    inverted = run_program(invert_dead_array(program), check_races=True, max_steps=400_000)
    assert normal.outputs["out"] is not None
    assert inverted.outputs["out"] is not None
