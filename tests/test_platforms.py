"""Tests for device configurations, bug models, calibration and the driver."""

import pytest

from repro.compiler import compile_program
from repro.compiler.driver import CompilerDriver
from repro.kernel_lang import ast, types as ty
from repro.platforms import (
    DeviceType,
    all_configurations,
    configurations_above_threshold,
    get_configuration,
)
from repro.platforms.bugmodels import (
    AlteraVectorInStructBug,
    AmdCharFirstStructBug,
    IntelRotateConstFoldBug,
    NvidiaUnionInitBug,
    OclgrindCommaBug,
)
from repro.platforms.calibration import (
    DEFECT_PROFILES,
    StochasticDefectModel,
    defect_models_for,
    program_fingerprint,
)
from repro.runtime.errors import BuildFailure, CompileTimeout
from repro.testing.figures import figure_program


# ---------------------------------------------------------------------------
# Registry / Table 1 metadata
# ---------------------------------------------------------------------------


def test_registry_has_21_configurations_in_id_order():
    configs = all_configurations()
    assert [c.config_id for c in configs] == list(range(1, 22))


def test_above_threshold_set_matches_table1():
    above = {c.config_id for c in configurations_above_threshold()}
    assert above == {1, 2, 3, 4, 9, 12, 13, 14, 15, 19}


def test_device_type_distribution_matches_table1():
    configs = all_configurations()
    gpus = [c for c in configs if c.device_type is DeviceType.GPU]
    cpus = [c for c in configs if c.device_type is DeviceType.CPU]
    assert len(gpus) == 11 and len(cpus) == 6
    assert get_configuration(18).device_type is DeviceType.ACCELERATOR
    assert get_configuration(21).device_type is DeviceType.FPGA


def test_every_configuration_has_calibration_and_table_row():
    for config in all_configurations():
        assert config.config_id in DEFECT_PROFILES
        assert any(name.startswith("calibrated") for name in config.bug_model_names())
        row = config.table_row()
        assert row["conf"] == str(config.config_id)
        assert row["type"] in {"GPU", "CPU", "Accelerator", "Emulator", "FPGA"}


def test_oclgrind_does_not_optimise():
    assert get_configuration(19).run_optimiser is False
    assert get_configuration(1).run_optimiser is True


# ---------------------------------------------------------------------------
# Individual bug models (pattern matching)
# ---------------------------------------------------------------------------


def test_amd_struct_bug_matches_figure_1a_only():
    bug = AmdCharFirstStructBug()
    config = get_configuration(5)
    assert bug.triggers(figure_program("1a"), True, config)
    assert not bug.triggers(figure_program("1a"), False, config)  # opts required
    assert not bug.triggers(figure_program("2b"), True, config)


def test_nvidia_union_bug_matches_figure_2a_only():
    bug = NvidiaUnionInitBug()
    config = get_configuration(1)
    assert bug.triggers(figure_program("2a"), False, config)
    assert not bug.triggers(figure_program("2a"), True, config)
    assert not bug.triggers(figure_program("1a"), False, config)


def test_rotate_bug_requires_literal_arguments():
    bug = IntelRotateConstFoldBug()
    config = get_configuration(14)
    assert bug.triggers(figure_program("2b"), True, config)
    non_literal = figure_program("2b")
    # Replace a literal argument by a variable reference: no longer foldable.
    call = next(n for n in non_literal.kernel().body.walk() if isinstance(n, ast.Call))
    call.args[1] = ast.VarRef("out")
    assert not bug.triggers(non_literal, True, config)


def test_altera_bug_is_a_front_end_internal_error():
    bug = AlteraVectorInStructBug()
    config = get_configuration(20)
    assert bug.stage == "frontend"
    with pytest.raises(BuildFailure) as err:
        bug.raise_failure(figure_program("1c"), True, config)
    assert err.value.internal


def test_oclgrind_comma_bug_sets_execution_flag():
    bug = OclgrindCommaBug()
    config = get_configuration(19)
    program = figure_program("2f")
    assert bug.triggers(program, False, config)
    _, flags = bug.apply(program, False, config)
    assert flags == {"comma_yields_zero": True}


# ---------------------------------------------------------------------------
# Calibrated stochastic defects
# ---------------------------------------------------------------------------


def _plain_kernel(seed: int = 0):
    from repro.generator import Mode, generate_kernel

    return generate_kernel(Mode.BASIC, seed=seed)


def test_fingerprint_is_stable_and_content_sensitive():
    a, b = _plain_kernel(1), _plain_kernel(1)
    assert program_fingerprint(a) == program_fingerprint(b)
    assert program_fingerprint(a) != program_fingerprint(_plain_kernel(2))


def test_stochastic_defects_are_deterministic_per_program():
    model, _ = defect_models_for(9)
    program = _plain_kernel(3)
    first = model.apply(program, True, None)
    second = model.apply(program, True, None)
    assert first[1] == second[1]
    assert program_fingerprint(first[0]) == program_fingerprint(second[0])


def test_stochastic_wrong_code_rate_is_roughly_calibrated():
    """Configuration 9's wrong-code rate (~2 %) must be visible at scale but
    configuration 1's (~0.3 %) must stay small -- shape, not exact numbers."""
    model9, _ = defect_models_for(9)
    model1, _ = defect_models_for(1)
    n = 120
    miscompiled9 = miscompiled1 = 0
    for seed in range(n):
        program = _plain_kernel(seed)
        transformed9, flags9 = model9.apply(program, True, None)
        if not flags9 and program_fingerprint(transformed9) != program_fingerprint(program):
            miscompiled9 += 1
        transformed1, flags1 = model1.apply(program, True, None)
        if not flags1 and program_fingerprint(transformed1) != program_fingerprint(program):
            miscompiled1 += 1
    assert miscompiled9 >= 1
    assert miscompiled1 <= miscompiled9


def test_defect_priority_build_failure_first():
    model, shim = defect_models_for(21)  # Altera FPGA: very high bf rate
    failures = 0
    for seed in range(30):
        try:
            shim.model.check_build(_plain_kernel(seed), True)
        except BuildFailure:
            failures += 1
    assert failures >= 5


# ---------------------------------------------------------------------------
# Driver integration
# ---------------------------------------------------------------------------


def test_reference_compiler_has_no_defects():
    program = figure_program("1a")
    compiled = compile_program(program)
    assert compiled.config_name == "reference"
    assert compiled.execution_flags == {}
    assert compiled.run().outputs["out"][0] == 2


def test_driver_applies_configuration_defects():
    program = figure_program("1a")
    compiled = compile_program(program, config=get_configuration(5), optimisations=True)
    assert compiled.run().outputs["out"][0] == 1


def test_driver_front_end_rejection_and_compile_timeout():
    with pytest.raises(BuildFailure):
        compile_program(figure_program("1c"), config=get_configuration(20))
    with pytest.raises(CompileTimeout):
        compile_program(figure_program("1e"), config=get_configuration(7))


def test_named_bugs_dominate_stochastic_defects():
    """A program matching a named bug model never additionally draws a
    stochastic crash/timeout for the same configuration (reduced exemplars
    exhibit their specific bug, as in the paper's reports)."""
    program = figure_program("2c")
    compiled = compile_program(program, config=get_configuration(12), optimisations=False)
    assert "force_runtime_crash" not in compiled.execution_flags
    assert compiled.run().outputs["out"] == [0, 0]


def test_compiled_kernel_runs_with_validation_failure_reported_as_build_failure():
    kernel = ast.FunctionDecl(
        "entry", ty.VOID, [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))],
        ast.Block([ast.out_write(ast.VarRef("missing"))]), is_kernel=True,
    )
    bad = ast.Program(functions=[kernel],
                      buffers=[ast.BufferSpec("out", ty.ULONG, 1, is_output=True)],
                      launch=ast.LaunchSpec((1, 1, 1), (1, 1, 1)))
    with pytest.raises(BuildFailure):
        CompilerDriver(None).compile(bad)
