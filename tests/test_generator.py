"""Tests for the CLsmith-style generator: options, grid selection, structure
of generated kernels per mode, reproducibility and well-definedness."""

import pytest

from repro.compiler import analysis
from repro.generator import CLsmithGenerator, Mode, generate_batch, generate_kernel
from repro.generator.grid import choose_launch
from repro.generator.options import ALL_MODES, GeneratorOptions
from repro.generator.rng import GeneratorRandom
from repro.kernel_lang import ast, printer, types as ty
from repro.kernel_lang.semantics import validate_program
from repro.runtime.device import run_program

_FAST = GeneratorOptions(min_total_threads=4, max_total_threads=16, max_group_size=4,
                         max_statements=6)


# ---------------------------------------------------------------------------
# RNG and grid
# ---------------------------------------------------------------------------


def test_rng_is_deterministic_and_forkable():
    a, b = GeneratorRandom(7), GeneratorRandom(7)
    assert [a.randint(0, 100) for _ in range(5)] == [b.randint(0, 100) for _ in range(5)]
    fork_a = GeneratorRandom(7).fork("x")
    fork_b = GeneratorRandom(7).fork("x")
    fork_c = GeneratorRandom(7).fork("y")
    seq_a = [fork_a.randint(0, 100) for _ in range(5)]
    assert seq_a == [fork_b.randint(0, 100) for _ in range(5)]
    assert seq_a != [fork_c.randint(0, 100) for _ in range(5)]


def test_rng_permutation_and_weighted_choice():
    rng = GeneratorRandom(3)
    perm = rng.permutation(8)
    assert sorted(perm) == list(range(8))
    assert rng.weighted_choice([("a", 0.0), ("b", 5.0)]) == "b"


def test_grid_respects_thread_and_group_bounds():
    options = GeneratorOptions(min_total_threads=8, max_total_threads=64, max_group_size=8)
    for seed in range(30):
        launch = choose_launch(GeneratorRandom(seed), options)
        assert 8 <= launch.total_threads < 64
        assert launch.group_size <= 8
        for n, w in zip(launch.global_size, launch.local_size):
            assert n % w == 0


def test_options_validation():
    with pytest.raises(ValueError):
        GeneratorOptions(min_total_threads=10, max_total_threads=5).validate()
    with pytest.raises(ValueError):
        GeneratorOptions(emi_blocks=1, emi_dead_array_size=1).validate()


# ---------------------------------------------------------------------------
# Generated program structure
# ---------------------------------------------------------------------------


def test_generation_is_reproducible_per_seed():
    a = generate_kernel(Mode.ALL, seed=11, options=_FAST)
    b = generate_kernel(Mode.ALL, seed=11, options=_FAST)
    c = generate_kernel(Mode.ALL, seed=12, options=_FAST)
    assert printer.print_program(a) == printer.print_program(b)
    assert printer.print_program(a) != printer.print_program(c)


def test_generated_kernels_validate_and_have_globals_struct():
    for seed in range(5):
        program = generate_kernel(Mode.BASIC, seed=seed, options=_FAST)
        assert validate_program(program) == []
        assert any(s.name == "Globals" for s in program.structs)
        assert program.buffer("out").is_output
        assert program.metadata["mode"] == "BASIC"


def test_mode_feature_presence():
    vector = generate_kernel(Mode.VECTOR, seed=1, options=_FAST)
    barrier = generate_kernel(Mode.BARRIER, seed=1, options=_FAST)
    atomic_section = generate_kernel(Mode.ATOMIC_SECTION, seed=1, options=_FAST)
    reduction = generate_kernel(Mode.ATOMIC_REDUCTION, seed=1, options=_FAST)
    everything = generate_kernel(Mode.ALL, seed=1, options=_FAST)

    assert analysis.uses_vectors(vector)
    assert analysis.uses_barriers(barrier)
    assert analysis.uses_atomics(atomic_section)
    assert analysis.uses_atomics(reduction) and analysis.uses_barriers(reduction)
    assert analysis.uses_vectors(everything) and analysis.uses_barriers(everything)
    assert analysis.uses_atomics(everything)

    basic = generate_kernel(Mode.BASIC, seed=1, options=_FAST)
    assert not analysis.uses_barriers(basic)
    assert not analysis.uses_atomics(basic)


def test_barrier_mode_has_permutation_buffer_and_offset():
    program = generate_kernel(Mode.BARRIER, seed=2, options=_FAST)
    names = {b.name for b in program.buffers}
    assert {"permutations", "A", "out"} <= names
    decls = [n for n in program.kernel().body.walk()
             if isinstance(n, ast.DeclStmt) and n.name == "A_offset"]
    assert decls, "BARRIER mode must declare the per-thread A_offset"


def test_atomic_section_mode_structure():
    program = generate_kernel(Mode.ATOMIC_SECTION, seed=3, options=_FAST)
    sections = [n for n in program.kernel().body.walk()
                if isinstance(n, ast.IfStmt) and n.atomic_section]
    assert sections
    for section in sections:
        text = printer.print_stmt(section)
        assert "atomic_inc" in text and "atomic_add" in text


def test_no_per_thread_ids_in_control_flow():
    """The generator must never make control flow depend on global/local ids
    (paper section 4.2) -- group ids are permitted."""
    per_thread = {"get_global_id", "get_local_id"}
    for mode in ALL_MODES:
        program = generate_kernel(mode, seed=4, options=_FAST)
        for node in program.kernel().body.walk():
            if isinstance(node, (ast.IfStmt, ast.WhileStmt)):
                cond_ids = {
                    n.function for n in node.cond.walk() if isinstance(n, ast.WorkItemExpr)
                }
                assert not (cond_ids & per_thread)


def test_emi_blocks_are_dead_by_construction():
    program = generate_kernel(Mode.BASIC, seed=5, options=_FAST, emi_blocks=3)
    blocks = [n for n in program.kernel().body.walk()
              if isinstance(n, ast.IfStmt) and n.emi_marker is not None]
    assert len(blocks) == 3
    assert any(b.name == "dead" for b in program.buffers)
    # Guards must compare dead[i] < dead[j] with j < i.
    for block in blocks:
        cond = block.cond
        assert isinstance(cond, ast.BinaryOp) and cond.op == "<"
        i = cond.left.index.value
        j = cond.right.index.value
        assert j < i
    # And executing the kernel must give the same result as without blocks,
    # because the blocks are unreachable.
    result = run_program(program)
    assert result.outputs["out"]


def test_generate_batch_uses_consecutive_seeds():
    batch = generate_batch(Mode.BASIC, 3, start_seed=100, options=_FAST)
    assert len(batch) == 3
    assert [p.metadata["seed"] for p in batch] == [100, 101, 102]


def test_generated_source_looks_like_opencl():
    text = printer.print_program(generate_kernel(Mode.ALL, seed=6, options=_FAST))
    assert "kernel void entry(" in text
    assert "struct Globals" in text
    assert "safe_" in text


def test_generator_class_api():
    generator = CLsmithGenerator(GeneratorOptions(mode=Mode.VECTOR), seed=9)
    program = generator.generate()
    assert program.metadata["mode"] == "VECTOR"
