"""Property tests for the reduction passes (the pass contract).

Every candidate a pass yields must (1) pretty-print through the printer,
(2) re-validate through ``repro.kernel_lang.semantics`` -- this is what
catches passes that build malformed ASTs before any kernel executes --
(3) strictly decrease the size metric, and (4) enumerate deterministically
for a given seed.  There is no text parser in this repository, so the
"round trip" is print + re-validate: the printer must accept every node the
pass built, and the validator must accept every scope/shape it produced.
"""

import itertools
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.emi.pruning import strip_outer_loop_control
from repro.generator import Mode, generate_kernel
from repro.generator.options import GeneratorOptions
from repro.kernel_lang import ast
from repro.kernel_lang.printer import print_program
from repro.kernel_lang.semantics import validate_program
from repro.reduction.passes import (
    DEFAULT_PASSES,
    ChildLiftPass,
    StatementDeletionPass,
    size_key,
)

_FAST_OPTIONS = GeneratorOptions(
    min_total_threads=4,
    max_total_threads=12,
    max_group_size=4,
    max_statements=8,
    max_expr_depth=2,
)

#: Candidates examined per (pass, kernel); bounds the property-test cost.
_CANDIDATE_LIMIT = 25

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from([Mode.BASIC, Mode.VECTOR, Mode.ALL]),
)
def test_pass_candidates_print_validate_and_shrink(seed, mode):
    program = generate_kernel(mode, seed=seed, options=_FAST_OPTIONS)
    threshold = size_key(program)
    for pass_ in DEFAULT_PASSES:
        rng = random.Random(f"property:{seed}")
        for candidate in itertools.islice(
            pass_.candidates(program, rng), _CANDIDATE_LIMIT
        ):
            # Round trip: the printer accepts every node the pass built...
            source = print_program(candidate)
            assert "entry" in source, pass_.name
            # ...and the validator accepts every scope/shape it produced.
            assert validate_program(candidate) == [], pass_.name
            # Strict shrink: the reduction fixpoint terminates.
            assert size_key(candidate) < threshold, pass_.name


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_candidate_enumeration_is_deterministic(seed):
    program = generate_kernel(Mode.ALL, seed=seed, options=_FAST_OPTIONS)
    for pass_ in DEFAULT_PASSES:
        first = [
            print_program(c)
            for c in itertools.islice(
                pass_.candidates(program, random.Random("rng:1")), _CANDIDATE_LIMIT
            )
        ]
        second = [
            print_program(c)
            for c in itertools.islice(
                pass_.candidates(program, random.Random("rng:1")), _CANDIDATE_LIMIT
            )
        ]
        assert first == second, pass_.name


def test_emi_blocks_reduce_too():
    """Pass candidates on an EMI-equipped kernel stay printable and valid."""
    program = generate_kernel(Mode.ALL, seed=4, options=_FAST_OPTIONS, emi_blocks=3)
    for pass_ in DEFAULT_PASSES:
        for candidate in itertools.islice(
            pass_.candidates(program, random.Random("emi")), _CANDIDATE_LIMIT
        ):
            print_program(candidate)
            assert validate_program(candidate) == [], pass_.name


def test_child_lift_strips_outer_loop_control():
    """Lifting a loop body reuses the EMI pruning idiom: outer break/continue
    disappear, nested loops keep theirs."""
    inner = ast.ForStmt(
        init=None,
        cond=None,
        update=None,
        body=ast.block(ast.BreakStmt()),
    )
    body = ast.block(
        ast.BreakStmt(),
        inner,
        ast.ContinueStmt(),
    )
    lifted = ChildLiftPass._lifted(ast.ForStmt(None, None, None, body))
    assert len(lifted) == 1 and isinstance(lifted[0], ast.ForStmt)
    assert isinstance(lifted[0].body.statements[0], ast.BreakStmt)
    # And the shared helper is literally the one the EMI pruner exports.
    stripped = strip_outer_loop_control(body)
    assert [type(s) for s in stripped.statements] == [ast.ForStmt]


def test_loop_shrink_candidates_survive_the_size_filter():
    """Regression: literal loop bounds are part of ``size_key``, so shrinking
    a trip count is visible progress -- without the bound term every
    loop-shrink candidate would be filtered as "not smaller" and the pass
    would be dead."""
    from repro.kernel_lang import types as ty
    from repro.reduction.passes import LoopShrinkPass

    loop = ast.ForStmt(
        init=ast.DeclStmt("i", ty.INT, ast.lit(0)),
        cond=ast.binop("<", ast.var("i"), ast.lit(100)),
        update=ast.assign(ast.var("i"), ast.binop("+", ast.var("i"), ast.lit(1))),
        body=ast.block(ast.out_write(ast.var("i"))),
    )
    program = ast.Program(
        functions=[
            ast.FunctionDecl(
                "entry", ty.VOID,
                [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))],
                ast.block(loop), is_kernel=True,
            )
        ],
        buffers=[ast.BufferSpec("out", ty.ULONG, 4, is_output=True)],
        launch=ast.LaunchSpec((4, 1, 1), (1, 1, 1)),
    )
    bounds = set()
    for candidate in LoopShrinkPass().candidates(program, random.Random("x")):
        for node in candidate.walk():
            if isinstance(node, ast.ForStmt):
                bounds.add(node.cond.right.value)
    assert bounds == {1, 50}


def test_ddmin_chunk_schedule_covers_whole_list_and_singletons():
    sizes = StatementDeletionPass._chunk_sizes(10)
    assert sizes[0] == 10          # try deleting everything first
    assert sizes[-1] == 1          # fall back to single statements
    assert all(a > b for a, b in zip(sizes, sizes[1:]))
