"""Cross-launch prepared-program cache: correctness and key-policy tests.

The cache reuses the launch-independent lowering step across launches, so
two properties are load-bearing:

* a warm bind must be byte-identical to a cold prepare (same outputs, step
  counts, race reports, error classification) -- otherwise the cache would
  silently change campaign tables;
* keys must never collide across engines, optimisation levels,
  ``comma_yields_zero`` settings or step budgets -- all four are baked into
  the lowered artefact.
"""

import pytest

from repro.compiler import compile_program
from repro.generator import generate_kernel
from repro.generator.options import GeneratorOptions, Mode
from repro.platforms import get_configuration
from repro.runtime.device import run_program
from repro.runtime.engine import get_engine
from repro.runtime.prepared import (
    PreparedCacheStats,
    PreparedProgramCache,
    prepared_family_key,
    prepared_program_key,
)
from repro.testing.campaign import run_clsmith_campaign
from repro.testing.differential import DifferentialHarness
from repro.testing.emi_harness import EmiHarness

ENGINES = ("reference", "compiled", "jit")

CORPUS_OPTIONS = GeneratorOptions(
    min_total_threads=4, max_total_threads=24, max_group_size=8, max_statements=8
)


def _observe(program, **kwargs):
    try:
        result = run_program(program, **kwargs)
    except Exception as exc:  # noqa: BLE001 - classification is the point
        return (
            "raise",
            type(exc).__name__,
            getattr(exc, "kind", None),
            getattr(exc, "steps", None),
        )
    return ("ok", result.outputs, result.steps, tuple(result.race_reports))


# ---------------------------------------------------------------------------
# Warm == cold (the cache must be observationally invisible)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_warm_bind_is_byte_identical_to_cold_prepare(engine):
    cache = PreparedProgramCache()
    modes = list(Mode)
    for seed in range(10):
        program = generate_kernel(modes[seed % len(modes)], seed, options=CORPUS_OPTIONS)
        cold = _observe(program, engine=engine)
        first = _observe(program, engine=engine, prepared_cache=cache)
        warm = _observe(program, engine=engine, prepared_cache=cache)
        again = _observe(program, engine=engine, prepared_cache=cache)
        assert cold == first == warm == again, f"seed {seed}"
    if engine == "reference":
        # The reference walker has no lowering step worth caching; the
        # cache bypasses it entirely (no stats traffic, no pinned entries).
        assert cache.stats.lookups == 0 and len(cache) == 0
    else:
        # Every program was lowered exactly once and re-bound twice.
        assert cache.stats.misses == 10
        assert cache.stats.hits == 20
        assert cache.stats.evictions == 0


def test_warm_bind_identical_under_timeouts_and_races():
    cache = PreparedProgramCache()
    program = generate_kernel(Mode.BASIC, 3, options=CORPUS_OPTIONS)
    for engine in ENGINES:
        cold = _observe(program, engine=engine, max_steps=40)
        assert cold[0] == "raise" and cold[1] == "ExecutionTimeout"
        warm_kwargs = dict(engine=engine, max_steps=40, prepared_cache=cache)
        assert _observe(program, **warm_kwargs) == cold
        assert _observe(program, **warm_kwargs) == cold
    racy = generate_kernel(Mode.ATOMIC_REDUCTION, 1, options=CORPUS_OPTIONS)
    for engine in ENGINES:
        cold = _observe(racy, engine=engine, check_races=True, throw_on_race=False)
        warm_kwargs = dict(
            engine=engine, check_races=True, throw_on_race=False, prepared_cache=cache
        )
        assert _observe(racy, **warm_kwargs) == cold
        assert _observe(racy, **warm_kwargs) == cold


def test_structurally_identical_programs_share_one_lowering():
    """The key is the canonical fingerprint, not object identity: a
    regenerated (distinct but identical) program must hit the cache and
    still produce byte-identical results."""
    cache = PreparedProgramCache()
    first = generate_kernel(Mode.BASIC, 7, options=CORPUS_OPTIONS)
    second = generate_kernel(Mode.BASIC, 7, options=CORPUS_OPTIONS)
    assert first is not second
    a = _observe(first, engine="jit", prepared_cache=cache)
    b = _observe(second, engine="jit", prepared_cache=cache)
    assert a == b
    assert cache.stats.misses == 1 and cache.stats.hits == 1


# ---------------------------------------------------------------------------
# Key policy: no collisions across engines / opt levels / comma / budget
# ---------------------------------------------------------------------------


def test_prepared_keys_never_collide_across_lowering_knobs():
    program = generate_kernel(Mode.BASIC, 0, options=CORPUS_OPTIONS)
    keys = set()
    for engine in ENGINES:
        for comma in (False, True):
            for max_steps in (1000, 2000):
                keys.add(prepared_program_key(program, engine, comma, max_steps))
    assert len(keys) == len(ENGINES) * 2 * 2


def test_prepared_keys_distinguish_optimisation_levels():
    base = generate_kernel(Mode.ALL, 2, options=CORPUS_OPTIONS)
    unopt = compile_program(base, optimisations=False).program
    opt = compile_program(base, optimisations=True).program
    for engine in ENGINES:
        key_unopt = prepared_program_key(unopt, engine, False, 1000)
        key_opt = prepared_program_key(opt, engine, False, 1000)
        assert key_unopt != key_opt


def test_one_cache_never_crosses_engines():
    """A shared cache serves all engines but each gets its own lowering
    (the reference engine bypasses the cache: nothing to reuse)."""
    cache = PreparedProgramCache()
    program = generate_kernel(Mode.BASIC, 1, options=CORPUS_OPTIONS)
    results = [
        _observe(program, engine=engine, prepared_cache=cache) for engine in ENGINES
    ]
    assert results[0] == results[1] == results[2]
    cacheable = [e for e in ENGINES if e != "reference"]
    assert cache.stats.misses == len(cacheable) and cache.stats.hits == 0
    assert len(cache) == len(cacheable)


# ---------------------------------------------------------------------------
# Bounds and accounting
# ---------------------------------------------------------------------------


def test_cache_is_bounded_and_counts_evictions():
    cache = PreparedProgramCache(maxsize=1)
    a = generate_kernel(Mode.BASIC, 0, options=CORPUS_OPTIONS)
    b = generate_kernel(Mode.BASIC, 1, options=CORPUS_OPTIONS)
    engine = get_engine("compiled")
    cache.lower(engine, a)
    cache.lower(engine, b)  # evicts a
    cache.lower(engine, a)  # miss again
    assert len(cache) == 1
    assert cache.stats.misses == 3 and cache.stats.evictions == 2


def test_zero_sized_cache_disables_storage_uniformly():
    cache = PreparedProgramCache(maxsize=0)
    program = generate_kernel(Mode.BASIC, 0, options=CORPUS_OPTIONS)
    for _ in range(3):
        assert _observe(program, engine="jit", prepared_cache=cache)[0] == "ok"
    assert cache.stats.misses == 3 and cache.stats.hits == 0 and len(cache) == 0


def test_stats_merge_and_since():
    a = PreparedCacheStats(hits=2, misses=3, evictions=1)
    b = PreparedCacheStats(hits=1, misses=1, evictions=0)
    merged = a.merge(b)
    assert (merged.hits, merged.misses, merged.evictions) == (3, 4, 1)
    delta = merged.since(b)
    assert (delta.hits, delta.misses, delta.evictions) == (2, 3, 1)
    assert merged.lookups == 7
    assert merged.as_dict() == {"hits": 3, "misses": 4, "evictions": 1}


# ---------------------------------------------------------------------------
# Batched (family) lowering x cache
# ---------------------------------------------------------------------------


def _family(seed, n_variants=5):
    from repro.emi import generate_variants
    from repro.testing.campaign import generate_emi_bases

    options = GeneratorOptions(
        min_total_threads=4, max_total_threads=12, max_group_size=4, max_statements=8
    )
    base = generate_emi_bases(1, seed=seed, options=options)[0]
    return [base] + generate_variants(base)[:n_variants]


def test_family_key_never_collides_with_single_keys():
    """A family key's first element is a tuple of fingerprints; a single
    key's is the fingerprint string.  The two can never compare equal, and
    the engine/comma/budget tail distinguishes families exactly as it does
    singles.  Duplicate members collapse in first-seen order."""
    from repro.platforms.calibration import program_fingerprint

    a = generate_kernel(Mode.BASIC, 0, options=CORPUS_OPTIONS)
    b = generate_kernel(Mode.BASIC, 1, options=CORPUS_OPTIONS)
    fp_a, fp_b = program_fingerprint(a), program_fingerprint(b)
    family = prepared_family_key([a, b, a], "jit", False, 1000)
    assert family == ((fp_a, fp_b), "jit", False, 1000)
    assert family != prepared_program_key(a, "jit", False, 1000)
    # Even a one-member family keys differently from its single lowering.
    assert prepared_family_key([a], "jit", False, 1000) != prepared_program_key(
        a, "jit", False, 1000
    )
    keys = {
        prepared_family_key([a, b], engine, comma, max_steps)
        for engine in ENGINES
        for comma in (False, True)
        for max_steps in (1000, 2000)
    }
    assert len(keys) == len(ENGINES) * 2 * 2


@pytest.mark.parametrize("engine", ("compiled", "jit"))
def test_cold_batch_accounting_mirrors_sequential_replay(engine):
    """Per-member accounting: one miss per distinct fingerprint, one hit per
    in-batch duplicate -- lookups grow by exactly len(family), as if every
    member had gone through ``lower``."""
    from repro.platforms.calibration import program_fingerprint

    family = _family(3)
    distinct = len({program_fingerprint(program) for program in family})
    assert distinct < len(family), "EMI families should contain duplicates"
    cache = PreparedProgramCache()
    cache.lower_batch(get_engine(engine), family, max_steps=300_000)
    assert cache.stats.lookups == len(family)
    assert cache.stats.misses == distinct
    assert cache.stats.hits == len(family) - distinct


@pytest.mark.parametrize("engine", ("compiled", "jit"))
def test_warm_batch_returns_the_identical_lowerings(engine):
    """A warm family re-lookup is pure hits and returns the *same* prepared
    objects the cold batch produced (shared family state included)."""
    cache = PreparedProgramCache()
    family = _family(3)
    cold = cache.lower_batch(get_engine(engine), family, max_steps=300_000)
    before = cache.stats.copy()
    warm = cache.lower_batch(get_engine(engine), family, max_steps=300_000)
    assert [id(p) for p in warm.prepared] == [id(p) for p in cold.prepared]
    assert cache.stats.hits == before.hits + len(family)
    assert cache.stats.misses == before.misses


@pytest.mark.parametrize("engine", ("compiled", "jit"))
def test_batch_reuses_single_entries_and_feeds_them_back(engine):
    """Two-level storage: a batch assembles members already cached under
    single-launch keys (no re-lowering), and a cold batch's fresh members
    land under their single keys so later single lookups stay warm."""
    cache = PreparedProgramCache()
    eng = get_engine(engine)
    family = _family(3, n_variants=3)
    singles = [cache.lower(eng, program, max_steps=300_000) for program in family]
    before = cache.stats.copy()
    batch = cache.lower_batch(eng, family, max_steps=300_000)
    assert cache.stats.misses == before.misses, "pre-cached members re-lowered"
    for single, member in zip(singles, batch.prepared):
        assert member is single
    # And the mirror image: members lowered by a cold batch serve later
    # single lookups without new lowering work.
    fresh = PreparedProgramCache()
    cold = fresh.lower_batch(eng, family, max_steps=300_000)
    misses = fresh.stats.misses
    for program, member in zip(family, cold.prepared):
        assert fresh.lower(eng, program, max_steps=300_000) is member
    assert fresh.stats.misses == misses


def test_zero_sized_cache_batch_counts_all_misses_but_shares_lowering():
    """maxsize=0 keeps the accounting uniform (every member a miss, nothing
    stored) while the in-batch lowering work is still shared -- and results
    stay byte-identical to sequential lowering."""
    cache = PreparedProgramCache(maxsize=0)
    family = _family(3)
    batch = cache.lower_batch(get_engine("jit"), family, max_steps=300_000)
    assert cache.stats.misses == len(family)
    assert cache.stats.hits == 0 and len(cache) == 0
    for program, prepared in zip(family, batch):
        assert _observe(
            program, engine="jit", max_steps=300_000, prepared=prepared
        ) == _observe(program, engine="jit", max_steps=300_000)


def test_reference_engine_batch_bypasses_the_cache():
    cache = PreparedProgramCache()
    family = _family(3, n_variants=2)
    batch = cache.lower_batch(get_engine("reference"), family, max_steps=300_000)
    assert len(batch) == len(family)
    assert cache.stats.lookups == 0 and len(cache) == 0


# ---------------------------------------------------------------------------
# Harness / campaign plumbing
# ---------------------------------------------------------------------------


def test_differential_harness_reuses_lowerings_and_surfaces_stats():
    configs = [None] + [get_configuration(i) for i in (1, 9)]
    program = generate_kernel(Mode.BASIC, 4, options=CORPUS_OPTIONS)
    harness = DifferentialHarness(
        configs, max_steps=300_000, engine="jit", cache_results=False
    )
    harness.run(program)
    stats = harness.prepared_stats.copy()
    # Most configurations compile most programs identically, so the cells
    # collapse onto far fewer lowerings than executions (result caching is
    # off here, so every cell actually executes).
    assert stats.lookups >= 2
    assert stats.hits > 0
    harness.run(program)
    assert harness.prepared_stats.hits > stats.hits


def test_emi_harness_surfaces_prepared_stats():
    harness = EmiHarness(max_steps=300_000, engine="jit", cache_results=False)
    program = generate_kernel(Mode.BASIC, 5, options=CORPUS_OPTIONS)
    harness.run_single(program, None, True)
    harness.run_single(program, None, True)
    assert harness.prepared_stats.lookups == 2
    assert harness.prepared_stats.hits == 1


def test_worker_pool_exposes_shared_prepared_cache():
    from repro.orchestration.jobs import CLSMITH_CURATE, CampaignJob
    from repro.orchestration.pool import WorkerPool

    job = CampaignJob(
        kind=CLSMITH_CURATE,
        seed=0,
        mode=Mode.BASIC.value,
        config_ids=(None,),
        optimisation_levels=(True,),
        options=CORPUS_OPTIONS,
        max_steps=300_000,
        engine="jit",
    )
    with WorkerPool(None) as pool:
        pool.run([job])
        assert pool.prepared_cache.stats.lookups == 1
        # A repeat of the same job is absorbed by the shared *result* cache
        # before it reaches the engine, so the prepared cache sees no new
        # traffic -- the division of labour ORCHESTRATION.md documents.
        pool.run([job])
        assert pool.prepared_cache.stats.lookups == 1
        assert pool.cache.stats.hits == 1


def test_campaign_results_carry_prepared_stats_serial_and_parallel():
    configs = [get_configuration(i) for i in (1, 9)]
    campaign = dict(
        kernels_per_mode=2,
        modes=(Mode.BASIC,),
        options=CORPUS_OPTIONS,
        max_steps=300_000,
        seed=11,
        engine="jit",
    )
    serial = run_clsmith_campaign(configs, **campaign)
    # The execution-result cache dedupes identical executions before they
    # reach the engine, so the prepared cache sees the result-cache *misses*.
    assert serial.prepared_stats.lookups > 0
    assert serial.prepared_stats.lookups == serial.cache_stats.misses
    parallel = run_clsmith_campaign(configs, parallelism=2, **campaign)
    assert parallel.table_rows() == serial.table_rows()
    assert parallel.prepared_stats.lookups > 0
