"""Tests for the sharded campaign execution engine (repro.orchestration):
the LRU result cache, the job model, the worker pool backends, and the
serial == parallel determinism guarantee of the campaigns."""

import pickle

import pytest

from repro.generator.options import GeneratorOptions, Mode
from repro.orchestration import (
    CLSMITH_DIFFERENTIAL,
    CacheStats,
    CampaignJob,
    JobResult,
    ResultCache,
    WorkerPool,
    execute_job,
)
from repro.platforms import get_configuration
from repro.platforms.calibration import program_fingerprint
from repro.testing.campaign import (
    EmiCampaignResult,
    _merge_emi_job_results,
    generate_emi_bases,
    run_clsmith_campaign,
    run_emi_campaign,
)

_FAST = GeneratorOptions(min_total_threads=4, max_total_threads=12, max_group_size=4,
                         max_statements=5)


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


def test_result_cache_counts_hits_and_misses():
    cache = ResultCache(maxsize=4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("a") == 1
    stats = cache.stats
    assert stats.hits == 2 and stats.misses == 1 and stats.evictions == 0
    assert stats.hit_rate == pytest.approx(2 / 3)


def test_result_cache_evicts_least_recently_used():
    cache = ResultCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a": "b" is now least recently used
    cache.put("c", 3)
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert "b" not in cache and "a" in cache and "c" in cache


def test_result_cache_maxsize_zero_disables_storage():
    cache = ResultCache(maxsize=0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0 and cache.stats.misses == 1


def test_cache_stats_merge_and_since():
    a = CacheStats(hits=3, misses=2, evictions=1)
    b = CacheStats(hits=1, misses=1, evictions=0)
    merged = a.merge(b)
    assert (merged.hits, merged.misses, merged.evictions) == (4, 3, 1)
    delta = merged.since(a)
    assert (delta.hits, delta.misses, delta.evictions) == (1, 1, 0)
    assert a.as_dict() == {"hits": 3, "misses": 2, "evictions": 1}


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------


def test_campaign_job_roundtrips_through_pickle():
    job = CampaignJob(
        kind=CLSMITH_DIFFERENTIAL,
        seed=7,
        mode=Mode.VECTOR.value,
        config_ids=(1, None, 19),
        optimisation_levels=(False, True),
        options=_FAST,
        max_steps=300_000,
    )
    clone = pickle.loads(pickle.dumps(job))
    assert clone == job
    assert [c.name if c else "reference" for c in clone.resolve_configs()] == [
        "config1", "reference", "config19",
    ]


def test_execute_job_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown campaign job kind"):
        execute_job(CampaignJob(kind="nonsense", seed=0))


def test_execute_job_reports_cache_delta():
    job = CampaignJob(
        kind=CLSMITH_DIFFERENTIAL, seed=3, mode=Mode.BASIC.value,
        config_ids=(1,), optimisation_levels=(True,), options=_FAST,
        max_steps=300_000,
    )
    cache = ResultCache()
    first = execute_job(job, cache=cache)
    second = execute_job(job, cache=cache)
    assert first.cache.misses >= 1
    # The repeated job replays entirely out of the shared cache.
    assert second.cache.hits >= 1 and second.cache.misses == 0
    assert first.counts == second.counts


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------


def test_worker_pool_backend_selection_and_validation():
    assert WorkerPool().backend == "serial"
    assert WorkerPool(parallelism=1).backend == "serial"
    assert WorkerPool(parallelism=4).backend == "process"
    assert WorkerPool(parallelism=4, backend="serial").backend == "serial"
    with pytest.raises(ValueError, match="unknown backend"):
        WorkerPool(backend="threads")


def test_worker_pool_serial_shares_one_cache_across_jobs():
    pool = WorkerPool()
    job = CampaignJob(
        kind=CLSMITH_DIFFERENTIAL, seed=5, mode=Mode.BASIC.value,
        config_ids=(1,), optimisation_levels=(True,), options=_FAST,
        max_steps=300_000,
    )
    results = pool.run([job, job])
    assert results[1].cache.hits >= 1 and results[1].cache.misses == 0
    assert pool.cache.stats.lookups == sum(r.cache.lookups for r in results)


def test_worker_pool_empty_job_list():
    assert WorkerPool(parallelism=2).run([]) == []


# ---------------------------------------------------------------------------
# Serial == parallel determinism (the engine's core guarantee)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 17])
def test_clsmith_campaign_parallel_tables_match_serial(seed):
    configs = [get_configuration(i) for i in (1, 19)]
    kwargs = dict(kernels_per_mode=2, modes=(Mode.BASIC, Mode.VECTOR),
                  options=_FAST, max_steps=300_000, seed=seed)
    serial = run_clsmith_campaign(configs, **kwargs)
    parallel = run_clsmith_campaign(configs, parallelism=3, **kwargs)
    assert serial.table_rows() == parallel.table_rows()
    assert serial.render() == parallel.render()


def test_clsmith_campaign_parallel_curation_matches_serial():
    configs = [get_configuration(i) for i in (1, 15)]
    kwargs = dict(kernels_per_mode=2, modes=(Mode.BARRIER,), options=_FAST,
                  max_steps=300_000, curate_on=get_configuration(15))
    serial = run_clsmith_campaign(configs, **kwargs)
    parallel = run_clsmith_campaign(configs, parallelism=2, **kwargs)
    assert serial.table_rows() == parallel.table_rows()
    # Curation on configuration 15 (high build-failure rate) must discard at
    # least the kernels that fail to build there with optimisations on.
    for mode in (Mode.BARRIER,):
        assert serial.cell(mode, "config15", True).build_failure == 0


def test_emi_campaign_parallel_rows_match_serial():
    configs = [get_configuration(i) for i in (1, 19)]
    kwargs = dict(n_bases=2, variants_per_base=4, optimisation_levels=(True,),
                  options=_FAST, max_steps=300_000, seed=2)
    serial = run_emi_campaign(configs, **kwargs)
    parallel = run_emi_campaign(configs, parallelism=2, **kwargs)
    assert serial.rows == parallel.rows
    assert serial.n_bases == parallel.n_bases
    assert serial.n_variants == parallel.n_variants == 4


def test_generate_emi_bases_parallel_matches_serial():
    serial = generate_emi_bases(2, seed=0, options=_FAST)
    parallel = generate_emi_bases(2, seed=0, options=_FAST, parallelism=2)
    assert [program_fingerprint(b) for b in serial] == [
        program_fingerprint(b) for b in parallel
    ]


# ---------------------------------------------------------------------------
# Campaign-level guards
# ---------------------------------------------------------------------------


def test_merge_emi_job_results_rejects_heterogeneous_families():
    result = EmiCampaignResult(2, 0)
    job_results = [
        JobResult("emi-family", seed=0, n_variants=3),
        JobResult("emi-family", seed=1, n_variants=4),
    ]
    with pytest.raises(ValueError, match="heterogeneous EMI families"):
        _merge_emi_job_results(result, job_results)


def test_custom_config_objects_are_shipped_by_value():
    """A caller-modified DeviceConfig (same id, bug models stripped) must be
    used verbatim, not silently swapped for its registry namesake — on both
    backends."""
    import dataclasses

    stripped = dataclasses.replace(get_configuration(15), bug_models=[])
    # BARRIER mode with optimisations off discriminates deterministically:
    # registry config 15's barrier build-failure multiplier rejects every
    # barrier kernel there, while the stripped copy is defect-free.
    kwargs = dict(kernels_per_mode=2, modes=(Mode.BARRIER,), options=_FAST,
                  max_steps=300_000)
    serial = run_clsmith_campaign([stripped], **kwargs)
    cell = serial.cell(Mode.BARRIER, "config15", False)
    assert cell.build_failure == 0 and cell.passed == 2
    registry = run_clsmith_campaign([get_configuration(15)], **kwargs)
    assert registry.cell(Mode.BARRIER, "config15", False).build_failure == 2
    assert registry.table_rows() != serial.table_rows()
    parallel = run_clsmith_campaign([stripped], parallelism=2, **kwargs)
    assert serial.table_rows() == parallel.table_rows()


def test_campaign_results_surface_cache_counters():
    configs = [get_configuration(1)]
    result = run_clsmith_campaign(configs, kernels_per_mode=2, modes=(Mode.BASIC,),
                                  options=_FAST, max_steps=300_000)
    assert result.cache_stats.lookups > 0
    assert result.cache_stats.as_dict()["misses"] > 0
