"""Tests for outcome classification, the differential and EMI harnesses,
reliability classification and campaign orchestration."""

import pytest

from repro.generator import Mode, generate_kernel
from repro.generator.options import GeneratorOptions
from repro.emi import generate_variants
from repro.platforms import all_configurations, get_configuration
from repro.runtime.errors import (
    BuildFailure,
    CompileTimeout,
    DataRaceError,
    ExecutionTimeout,
    RuntimeCrash,
)
from repro.testing.campaign import (
    generate_emi_bases,
    run_clsmith_campaign,
    run_emi_campaign,
    worst_code,
)
from repro.testing.differential import MAJORITY_THRESHOLD, DifferentialHarness
from repro.testing.emi_harness import EmiBaseResult, EmiHarness
from repro.testing.figures import figure_program
from repro.testing.outcomes import Outcome, OutcomeCounts, classify_exception
from repro.testing.reliability import FAILURE_THRESHOLD, ReliabilityClassifier

_FAST = GeneratorOptions(min_total_threads=4, max_total_threads=12, max_group_size=4,
                         max_statements=5)


# ---------------------------------------------------------------------------
# Outcomes
# ---------------------------------------------------------------------------


def test_exception_classification():
    assert classify_exception(BuildFailure("x")) is Outcome.BUILD_FAILURE
    assert classify_exception(CompileTimeout()) is Outcome.TIMEOUT
    assert classify_exception(ExecutionTimeout()) is Outcome.TIMEOUT
    assert classify_exception(RuntimeCrash()) is Outcome.RUNTIME_CRASH
    assert classify_exception(DataRaceError("r")) is Outcome.UNDEFINED_BEHAVIOUR


def test_outcome_counts_and_wrong_code_percentage():
    counts = OutcomeCounts()
    for outcome in (Outcome.PASS, Outcome.PASS, Outcome.WRONG_CODE, Outcome.BUILD_FAILURE,
                    Outcome.TIMEOUT):
        counts.add(outcome)
    assert counts.total == 5
    assert counts.computed_results == 3
    assert counts.wrong_code_percentage == pytest.approx(100.0 / 3)
    assert counts.failure_fraction == pytest.approx(2 / 5)
    merged = counts.merge(counts)
    assert merged.total == 10
    assert counts.as_dict()["w"] == 1


def test_worst_code_ordering_matches_table3():
    assert worst_code(["ok", "to", "w"]) == "w"
    assert worst_code(["ok", "ng"]) == "ng"
    assert worst_code(["ok", "c", "to"]) == "c"
    assert worst_code(["ok"]) == "ok"


def test_worst_code_ranks_build_failure_between_wrong_code_and_crash():
    """Regression: "bf" was missing from the severity table, so a build
    failure ranked *below* a clean pass.  Table 3's legend puts it above every
    crash-free outcome and below wrong code."""
    assert worst_code(["ok", "bf"]) == "bf"
    assert worst_code(["to", "bf", "c"]) == "bf"
    assert worst_code(["bf", "w"]) == "w"
    assert worst_code(["bf", "ng", "ok"]) == "bf"


# ---------------------------------------------------------------------------
# Differential harness
# ---------------------------------------------------------------------------


def test_differential_flags_minority_as_wrong_code():
    # Figure 1(a) on: reference + three NVIDIA configs (correct) + AMD config 5
    # (miscompiles with optimisations) -> config 5+ must be the odd one out.
    configs = [None, get_configuration(1), get_configuration(3), get_configuration(5)]
    harness = DifferentialHarness(configs, optimisation_levels=(True,))
    result = harness.run(figure_program("1a"))
    assert result.majority_size >= MAJORITY_THRESHOLD
    wrong = {r.config_name for r in result.wrong_code_records}
    assert wrong == {"config5"}
    assert result.record_for("config1", True).outcome is Outcome.PASS


def test_differential_requires_majority_of_three():
    harness = DifferentialHarness([None], optimisation_levels=(True,))
    result = harness.run(figure_program("1a"))
    assert not result.has_mismatch
    assert result.majority_size == 1


def test_differential_records_build_failures_and_timeouts():
    configs = [None, get_configuration(20), get_configuration(7)]
    harness = DifferentialHarness(configs, optimisation_levels=(True,))
    result_1c = harness.run(figure_program("1c"))
    assert result_1c.record_for("config20", True).outcome is Outcome.BUILD_FAILURE
    result_1e = harness.run(figure_program("1e"))
    assert result_1e.record_for("config7", True).outcome is Outcome.TIMEOUT


def test_differential_majority_tie_break_is_order_independent():
    """A 2-2 split must elect the same reference value no matter in which
    order the configurations voted (count desc, then value asc)."""
    assert DifferentialHarness._majority(["a", "a", "b", "b"]) == ("a", 2)
    assert DifferentialHarness._majority(["b", "b", "a", "a"]) == ("a", 2)
    assert DifferentialHarness._majority(["b", "a", "b", "a"]) == ("a", 2)
    assert DifferentialHarness._majority([]) == (None, 0)
    # A strict majority still wins regardless of value ordering.
    assert DifferentialHarness._majority(["b", "b", "a"]) == ("b", 2)


def test_differential_result_cache_is_transparent():
    program = generate_kernel(Mode.BASIC, seed=1, options=_FAST)
    cached = DifferentialHarness([None, get_configuration(1)], cache_results=True).run(program)
    uncached = DifferentialHarness([None, get_configuration(1)], cache_results=False).run(program)
    assert [r.outcome for r in cached.records] == [r.outcome for r in uncached.records]


# ---------------------------------------------------------------------------
# EMI harness
# ---------------------------------------------------------------------------


def test_emi_harness_stable_family_on_reference():
    base = generate_emi_bases(1, seed=3, options=_FAST)[0]
    variants = [base] + generate_variants(base)[:6]
    summary = EmiHarness().run_family(variants, None, optimisations=True)
    assert summary.stable and not summary.wrong_code and not summary.bad_base
    assert summary.distinct_values == 1
    assert summary.worst_outcome == "ok"


def test_emi_base_result_worst_outcome_reports_build_failure_as_bf():
    """worst_outcome follows the Table 3 severity order w > bf > c > to > ng,
    so an induced build failure outranks crashes and timeouts."""
    summary = EmiBaseResult(
        config_name="config20", optimisations=True,
        variant_outcomes=[Outcome.BUILD_FAILURE, Outcome.RUNTIME_CRASH, Outcome.PASS],
        distinct_values=1, bad_base=False, wrong_code=False,
        induced_build_failure=True, induced_crash=True, induced_timeout=True,
        stable=False,
    )
    assert summary.worst_outcome == "bf"
    assert worst_code([summary.worst_outcome, "c", "ok"]) == "bf"


def test_emi_harness_detects_comma_defect_is_invisible_to_emi():
    """Oclgrind's wrong code is not optimisation-sensitive, so EMI families
    agree with each other even though they all differ from the reference
    (paper section 7.4's explanation for Table 5's zeros on config 19)."""
    base = generate_emi_bases(1, seed=5, options=_FAST)[0]
    variants = [base] + generate_variants(base)[:6]
    summary = EmiHarness().run_family(variants, get_configuration(19), optimisations=False)
    assert not summary.wrong_code


def test_emi_harness_run_single_is_public_and_classifies_outcomes():
    """generate_emi_bases used to reach into the private ``_run_one``; the
    public ``run_single`` covers that use."""
    harness = EmiHarness()
    program = generate_kernel(Mode.BASIC, seed=1, options=_FAST)
    outcome, result = harness.run_single(program, None, True)
    assert outcome is Outcome.PASS and result is not None
    failing_outcome, failing_result = harness.run_single(
        figure_program("1c"), get_configuration(20), True
    )
    assert failing_outcome is Outcome.BUILD_FAILURE and failing_result is None


def test_emi_harness_compare_expected_detects_wrong_code():
    harness = EmiHarness()
    program = figure_program("1d")
    from repro.compiler import compile_program

    expected = compile_program(program).run()
    outcome = harness.compare_expected(program, expected, get_configuration(17), True)
    assert outcome is Outcome.WRONG_CODE
    reference_outcome = harness.compare_expected(program, expected, None, True)
    assert reference_outcome is Outcome.PASS


# ---------------------------------------------------------------------------
# Reliability classification (Table 1) and campaigns (Tables 4 and 5)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_reliability_report():
    configs = [get_configuration(i) for i in (1, 5, 9, 19, 21)]
    classifier = ReliabilityClassifier(configs, kernels_per_mode=2,
                                       modes=(Mode.BASIC, Mode.BARRIER),
                                       options=_FAST, max_steps=300_000)
    return classifier.classify()


def test_reliability_classifier_separates_good_and_bad_configs(small_reliability_report):
    classification = small_reliability_report.classification()
    assert classification[1] is True
    assert classification[21] is False
    rows = small_reliability_report.table_rows()
    assert len(rows) == 5
    assert all("measured_failure_fraction" in row for row in rows)
    assert 0.0 <= FAILURE_THRESHOLD <= 1.0


def test_clsmith_campaign_produces_table4_shaped_rows():
    configs = [get_configuration(i) for i in (1, 9)]
    result = run_clsmith_campaign(configs, kernels_per_mode=2,
                                  modes=(Mode.BASIC, Mode.VECTOR), options=_FAST,
                                  max_steps=300_000)
    rows = result.table_rows()
    assert len(rows) == 2 * 2 * 2  # modes x configs x opt levels
    rendered = result.render()
    assert "config1+" in rendered and "w%" in rendered
    for row in rows:
        assert row["w"] + row["bf"] + row["c"] + row["to"] + row["ok"] + row["ub"] == 2


def test_emi_campaign_produces_table5_shaped_rows():
    configs = [get_configuration(1), get_configuration(19)]
    result = run_emi_campaign(configs, n_bases=2, variants_per_base=4,
                              optimisation_levels=(True,), options=_FAST,
                              max_steps=300_000, seed=2)
    assert result.n_bases == 2
    # Regression: n_variants used to report len(family) of the *last* base
    # (base + variants, off by one); it must be the per-base variant count.
    assert result.n_variants == 4
    for (_, _), row in result.rows.items():
        total = row["base_fails"] + row["w"] + row["stable"]
        assert total <= 2 + row["bf"] + row["c"] + row["to"] + 2
    assert "base fails" in result.render()


def test_generate_emi_bases_filters_dead_placement():
    bases = generate_emi_bases(2, seed=0, options=_FAST, filter_dead_placement=True)
    assert len(bases) == 2
    for base in bases:
        assert base.metadata["emi_blocks"] >= 1
        assert "emi_base_fingerprint" in base.metadata
