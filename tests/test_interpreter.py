"""Tests for the memory model and the kernel interpreter (single work-item
semantics: expressions, control flow, structs/unions/pointers, UB detection).
"""

import pytest

from repro.kernel_lang import ast, types as ty, values as vals
from repro.runtime import memory
from repro.runtime.device import run_program
from repro.runtime.errors import ExecutionTimeout, UndefinedBehaviourError
from repro.kernel_lang.semantics import UBKind


def run_kernel(statements, buffers=None, params=None, launch=None, structs=None,
               functions=None, max_steps=200_000):
    """Build a single-thread kernel around ``statements`` and run it."""
    params = params or [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))]
    buffers = buffers or [ast.BufferSpec("out", ty.ULONG, 1, is_output=True)]
    launch = launch or ast.LaunchSpec((1, 1, 1), (1, 1, 1))
    kernel = ast.FunctionDecl("entry", ty.VOID, params, ast.Block(statements), is_kernel=True)
    program = ast.Program(
        structs=list(structs or []),
        functions=list(functions or []) + [kernel],
        buffers=buffers,
        launch=launch,
    )
    return run_program(program, max_steps=max_steps)


def out0(statements, **kwargs):
    return run_kernel(statements, **kwargs).outputs["out"][0]


# ---------------------------------------------------------------------------
# Memory model
# ---------------------------------------------------------------------------


def test_lvalue_navigation_into_struct_and_array():
    s = ty.StructType("S", (ty.FieldDecl("a", ty.INT), ty.FieldDecl("b", ty.ArrayType(ty.INT, 3))))
    cell = memory.Cell("s", s, vals.zero_value(s))
    lv = memory.LValue(cell).member("b").index(2)
    lv.write(vals.scalar(ty.INT, 9))
    assert memory.LValue(cell).member("b").index(2).read().value == 9
    assert lv.type is ty.INT


def test_lvalue_out_of_bounds_is_ub():
    arr = ty.ArrayType(ty.INT, 2)
    cell = memory.Cell("a", arr, vals.zero_value(arr))
    with pytest.raises(UndefinedBehaviourError):
        memory.LValue(cell).index(5).read()


def test_environment_scoping_and_lookup():
    env = memory.Environment()
    env.declare(memory.Cell("x", ty.INT, vals.scalar(ty.INT, 1)))
    child = env.child()
    child.declare(memory.Cell("y", ty.INT, vals.scalar(ty.INT, 2)))
    assert child.lookup("x").value.value == 1
    assert child.contains("y") and not env.contains("y")
    with pytest.raises(KeyError):
        env.lookup("y")


def test_pointer_roundtrip_through_lvalue():
    cell = memory.Cell("x", ty.INT, vals.scalar(ty.INT, 5))
    ptr = memory.LValue(cell).as_pointer()
    assert memory.lvalue_from_pointer(ptr).read().value == 5
    with pytest.raises(UndefinedBehaviourError):
        memory.lvalue_from_pointer(vals.PointerValue(ty.PointerType(ty.INT)))


# ---------------------------------------------------------------------------
# Expression and statement semantics
# ---------------------------------------------------------------------------


def test_arithmetic_and_promotion():
    value = out0([
        ast.DeclStmt("a", ty.CHAR, ast.IntLiteral(100, ty.CHAR)),
        ast.DeclStmt("b", ty.CHAR, ast.IntLiteral(100, ty.CHAR)),
        # char + char promotes to int, so 200 does not overflow.
        ast.out_write(ast.BinaryOp("+", ast.VarRef("a"), ast.VarRef("b"))),
    ])
    assert value == 200


def test_signed_overflow_is_detected_as_ub():
    with pytest.raises(UndefinedBehaviourError) as err:
        out0([
            ast.DeclStmt("a", ty.INT, ast.IntLiteral(ty.INT.max_value)),
            ast.out_write(ast.BinaryOp("+", ast.VarRef("a"), ast.IntLiteral(1))),
        ])
    assert err.value.kind is UBKind.SIGNED_OVERFLOW


def test_unsigned_arithmetic_wraps_silently():
    value = out0([
        ast.DeclStmt("a", ty.UINT, ast.IntLiteral(0xFFFFFFFF, ty.UINT)),
        ast.out_write(ast.BinaryOp("+", ast.VarRef("a"), ast.IntLiteral(1, ty.UINT))),
    ])
    assert value == 0


def test_division_by_zero_and_shift_range_are_ub():
    with pytest.raises(UndefinedBehaviourError):
        out0([ast.out_write(ast.BinaryOp("/", ast.IntLiteral(1), ast.IntLiteral(0)))])
    with pytest.raises(UndefinedBehaviourError):
        out0([ast.out_write(ast.BinaryOp("<<", ast.IntLiteral(1), ast.IntLiteral(40)))])


def test_logical_operators_short_circuit():
    # The right operand would divide by zero; && must not evaluate it.
    value = out0([
        ast.out_write(
            ast.BinaryOp(
                "&&",
                ast.IntLiteral(0),
                ast.BinaryOp("/", ast.IntLiteral(1), ast.IntLiteral(0)),
            )
        )
    ])
    assert value == 0


def test_comma_operator_yields_right_operand():
    value = out0([
        ast.DeclStmt("x", ty.INT, ast.IntLiteral(5)),
        ast.out_write(ast.BinaryOp(",", ast.VarRef("x"), ast.IntLiteral(7))),
    ])
    assert value == 7


def test_conditional_expression_and_cast():
    value = out0([
        ast.out_write(
            ast.Conditional(ast.IntLiteral(1), ast.Cast(ty.UCHAR, ast.IntLiteral(300)),
                            ast.IntLiteral(9))
        )
    ])
    assert value == 300 % 256


def test_for_loop_with_break_and_continue():
    value = out0([
        ast.DeclStmt("acc", ty.INT, ast.IntLiteral(0)),
        ast.ForStmt(
            ast.DeclStmt("i", ty.INT, ast.IntLiteral(0)),
            ast.BinaryOp("<", ast.VarRef("i"), ast.IntLiteral(10)),
            ast.AssignStmt(ast.VarRef("i"), ast.IntLiteral(1), "+="),
            ast.Block([
                ast.IfStmt(ast.BinaryOp("==", ast.VarRef("i"), ast.IntLiteral(3)),
                           ast.Block([ast.ContinueStmt()])),
                ast.IfStmt(ast.BinaryOp("==", ast.VarRef("i"), ast.IntLiteral(6)),
                           ast.Block([ast.BreakStmt()])),
                ast.AssignStmt(ast.VarRef("acc"), ast.VarRef("i"), "+="),
            ]),
        ),
        ast.out_write(ast.VarRef("acc")),
    ])
    assert value == 0 + 1 + 2 + 4 + 5


def test_while_loop_and_timeout_budget():
    with pytest.raises(ExecutionTimeout):
        out0([
            ast.WhileStmt(ast.IntLiteral(1), ast.Block([])),
            ast.out_write(ast.IntLiteral(0)),
        ], max_steps=5_000)


def test_function_call_with_pointer_argument():
    helper = ast.FunctionDecl(
        "bump", ty.VOID, [ast.ParamDecl("p", ty.PointerType(ty.INT))],
        ast.Block([ast.AssignStmt(ast.Deref(ast.VarRef("p")), ast.IntLiteral(41))]),
    )
    value = out0([
        ast.DeclStmt("x", ty.INT, ast.IntLiteral(0)),
        ast.ExprStmt(ast.Call("bump", [ast.AddressOf(ast.VarRef("x"))])),
        ast.out_write(ast.BinaryOp("+", ast.VarRef("x"), ast.IntLiteral(1))),
    ], functions=[helper])
    assert value == 42


def test_function_return_value_and_recursion_limit():
    helper = ast.FunctionDecl(
        "same", ty.INT, [ast.ParamDecl("v", ty.INT)],
        ast.Block([ast.ReturnStmt(ast.Call("safe_add", [ast.VarRef("v"), ast.IntLiteral(1)]))]),
    )
    value = out0([
        ast.out_write(ast.Call("same", [ast.IntLiteral(9)])),
    ], functions=[helper])
    assert value == 10

    recursive = ast.FunctionDecl(
        "loop", ty.INT, [],
        ast.Block([ast.ReturnStmt(ast.Call("loop", []))]),
    )
    with pytest.raises(UndefinedBehaviourError):
        out0([ast.out_write(ast.Call("loop", []))], functions=[recursive])


def test_struct_declaration_assignment_and_field_access():
    s = ty.StructType("S", (ty.FieldDecl("a", ty.INT), ty.FieldDecl("b", ty.INT)))
    value = out0([
        ast.DeclStmt("s", s, ast.InitList([ast.IntLiteral(1), ast.IntLiteral(2)])),
        ast.DeclStmt("t", s),
        ast.AssignStmt(ast.VarRef("t"), ast.VarRef("s")),
        ast.AssignStmt(ast.FieldAccess(ast.VarRef("s"), "a"), ast.IntLiteral(99)),
        # t must hold the old values: struct assignment copies.
        ast.out_write(ast.BinaryOp("+", ast.FieldAccess(ast.VarRef("t"), "a"),
                                   ast.FieldAccess(ast.VarRef("t"), "b"))),
    ], structs=[s])
    assert value == 3


def test_union_initialiser_initialises_first_member():
    inner = ty.StructType("S", (ty.FieldDecl("c", ty.SHORT), ty.FieldDecl("d", ty.LONG)))
    u = ty.UnionType("U", (ty.FieldDecl("a", ty.UINT), ty.FieldDecl("b", inner)))
    value = out0([
        ast.DeclStmt("u", u, ast.InitList([ast.IntLiteral(1)])),
        ast.out_write(ast.FieldAccess(ast.VarRef("u"), "a")),
    ], structs=[inner, u])
    assert value == 1


def test_vector_literal_component_and_componentwise_ops():
    v2 = ty.VectorType(ty.UINT, 2)
    value = out0([
        ast.DeclStmt("v", v2, ast.VectorLiteral(v2, [ast.IntLiteral(3, ty.UINT),
                                                     ast.IntLiteral(4, ty.UINT)])),
        ast.DeclStmt("w", v2, ast.BinaryOp("+", ast.VarRef("v"), ast.VarRef("v"))),
        ast.out_write(ast.VectorComponent(ast.VarRef("w"), 1)),
    ])
    assert value == 8


def test_vector_component_on_temporary_value():
    v2 = ty.VectorType(ty.UINT, 2)
    rotate = ast.Call("rotate", [
        ast.VectorLiteral(v2, [ast.IntLiteral(1, ty.UINT), ast.IntLiteral(1, ty.UINT)]),
        ast.VectorLiteral(v2, [ast.IntLiteral(0, ty.UINT), ast.IntLiteral(0, ty.UINT)]),
    ])
    assert out0([ast.out_write(ast.VectorComponent(rotate, 0))]) == 1


def test_vector_comparison_yields_minus_one_for_true():
    v2 = ty.VectorType(ty.INT, 2)
    value = out0([
        ast.DeclStmt("v", v2, ast.VectorLiteral(v2, [ast.IntLiteral(5), ast.IntLiteral(1)])),
        ast.DeclStmt("c", v2, ast.BinaryOp(">", ast.VarRef("v"),
                                           ast.VectorLiteral(v2, [ast.IntLiteral(2),
                                                                  ast.IntLiteral(2)]))),
        ast.out_write(ast.Cast(ty.UINT, ast.VectorComponent(ast.VarRef("c"), 0))),
    ])
    assert value == 0xFFFFFFFF


def test_buffer_indexing_and_scalar_kernel_arguments():
    result = run_kernel(
        [
            ast.out_write(
                ast.BinaryOp("+", ast.IndexAccess(ast.VarRef("data"), ast.IntLiteral(2)),
                             ast.VarRef("bias"))
            )
        ],
        params=[
            ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL)),
            ast.ParamDecl("data", ty.PointerType(ty.INT, ty.GLOBAL)),
            ast.ParamDecl("bias", ty.INT),
        ],
        buffers=[
            ast.BufferSpec("out", ty.ULONG, 1, is_output=True),
            ast.BufferSpec("data", ty.INT, 4, init=[10, 20, 30, 40]),
        ],
    )
    assert result.outputs["out"][0] == 30  # bias defaults to 0


def test_scalar_kernel_argument_from_metadata():
    kernel = ast.FunctionDecl(
        "entry", ty.VOID,
        [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL)),
         ast.ParamDecl("bias", ty.INT)],
        ast.Block([ast.out_write(ast.VarRef("bias"))]), is_kernel=True,
    )
    program = ast.Program(
        functions=[kernel],
        buffers=[ast.BufferSpec("out", ty.ULONG, 1, is_output=True)],
        launch=ast.LaunchSpec((1, 1, 1), (1, 1, 1)),
        metadata={"scalar_args": {"bias": 7}},
    )
    assert run_program(program).outputs["out"][0] == 7


def test_null_pointer_dereference_is_ub():
    with pytest.raises(UndefinedBehaviourError) as err:
        out0([
            ast.DeclStmt("p", ty.PointerType(ty.INT), ast.IntLiteral(0)),
            ast.out_write(ast.Deref(ast.VarRef("p"))),
        ])
    assert err.value.kind is UBKind.NULL_DEREFERENCE


def test_out_of_bounds_buffer_access_is_ub():
    with pytest.raises(UndefinedBehaviourError) as err:
        out0([
            ast.AssignStmt(ast.IndexAccess(ast.VarRef("out"), ast.IntLiteral(50)),
                           ast.IntLiteral(1)),
        ])
    assert err.value.kind is UBKind.OUT_OF_BOUNDS


def test_clamp_with_inverted_bounds_reports_builtin_ub():
    with pytest.raises(UndefinedBehaviourError) as err:
        out0([
            ast.out_write(ast.Call("clamp", [ast.IntLiteral(1), ast.IntLiteral(5),
                                             ast.IntLiteral(0)]))
        ])
    assert err.value.kind is UBKind.BUILTIN_UNDEFINED


def test_workitem_functions_reflect_launch_geometry():
    result = run_kernel(
        [ast.out_write(ast.BinaryOp(
            "+",
            ast.BinaryOp("*", ast.WorkItemExpr("get_global_size", 0), ast.IntLiteral(100)),
            ast.WorkItemExpr("get_global_id", 0),
        ))],
        buffers=[ast.BufferSpec("out", ty.ULONG, 4, is_output=True)],
        launch=ast.LaunchSpec((4, 1, 1), (2, 1, 1)),
    )
    assert result.outputs["out"] == [400, 401, 402, 403]
