"""Tests for AST construction helpers, traversal and the OpenCL C printer."""

import pytest

from repro.kernel_lang import ast, printer, types as ty


def _simple_program():
    body = ast.Block([
        ast.DeclStmt("x", ty.INT, ast.IntLiteral(2)),
        ast.IfStmt(
            ast.BinaryOp(">", ast.VarRef("x"), ast.IntLiteral(0)),
            ast.Block([ast.AssignStmt(ast.VarRef("x"), ast.IntLiteral(1), "+=")]),
            ast.Block([ast.AssignStmt(ast.VarRef("x"), ast.IntLiteral(0))]),
        ),
        ast.out_write(ast.VarRef("x")),
    ])
    kernel = ast.FunctionDecl(
        "entry", ty.VOID, [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))],
        body, is_kernel=True,
    )
    return ast.Program(
        functions=[kernel],
        buffers=[ast.BufferSpec("out", ty.ULONG, 4, is_output=True)],
        launch=ast.LaunchSpec((4, 1, 1), (2, 1, 1)),
    )


# ---------------------------------------------------------------------------
# AST structure
# ---------------------------------------------------------------------------


def test_walk_visits_all_nodes():
    program = _simple_program()
    kinds = {type(node).__name__ for node in program.kernel().body.walk()}
    assert {"Block", "DeclStmt", "IfStmt", "AssignStmt", "BinaryOp", "VarRef",
            "IntLiteral"} <= kinds


def test_clone_is_deep():
    program = _simple_program()
    clone = program.clone()
    clone.kernel().body.statements.pop()
    assert len(program.kernel().body.statements) == 3
    assert len(clone.kernel().body.statements) == 2


def test_program_lookup_helpers():
    program = _simple_program()
    assert program.kernel().name == "entry"
    assert program.buffer("out").is_output
    assert program.output_buffers()[0].name == "out"
    assert not program.has_function("missing")
    with pytest.raises(KeyError):
        program.function("missing")
    with pytest.raises(KeyError):
        program.buffer("missing")


def test_launch_spec_validation_and_derived_sizes():
    launch = ast.LaunchSpec((8, 2, 1), (4, 1, 1))
    assert launch.total_threads == 16
    assert launch.group_size == 4
    assert launch.num_groups == (2, 2, 1)
    assert launch.total_groups == 4
    with pytest.raises(ValueError):
        ast.LaunchSpec((5, 1, 1), (2, 1, 1))


def test_buffer_spec_initialisers():
    assert ast.BufferSpec("b", ty.UINT, 4, init="iota").initial_contents() == [0, 1, 2, 3]
    assert ast.BufferSpec("b", ty.UINT, 3, init="one").initial_contents() == [1, 1, 1]
    assert ast.BufferSpec("b", ty.UINT, 4, init="iota_inverted").initial_contents() == [4, 3, 2, 1]
    assert ast.BufferSpec("b", ty.UINT, 4, init=[7, 8]).initial_contents() == [7, 8, 0, 0]
    with pytest.raises(ValueError):
        ast.BufferSpec("b", ty.UINT, 4, init="nope").initial_contents()


def test_count_nodes_and_find_statements():
    program = _simple_program()
    assert ast.count_nodes(program.kernel().body) > 10
    ifs = ast.find_statements(program.kernel().body, lambda s: isinstance(s, ast.IfStmt))
    assert len(ifs) == 1


def test_workitem_helpers():
    assert ast.global_linear_id().function == "get_linear_global_id"
    assert ast.local_linear_id().function == "get_linear_local_id"
    assert ast.group_linear_id().function == "get_linear_group_id"


# ---------------------------------------------------------------------------
# Printer
# ---------------------------------------------------------------------------


def test_print_program_contains_kernel_signature_and_body():
    text = printer.print_program(_simple_program())
    assert "kernel void entry(global ulong* out)" in text
    assert "int x = 2;" in text
    assert "x += 1;" in text
    assert "out[get_linear_global_id()] = x;" in text


def test_printer_parenthesises_by_precedence():
    expr = ast.BinaryOp("*", ast.BinaryOp("+", ast.var("a"), ast.var("b")), ast.var("c"))
    assert printer.print_expr(expr) == "(a + b) * c"
    expr2 = ast.BinaryOp("+", ast.var("a"), ast.BinaryOp("*", ast.var("b"), ast.var("c")))
    assert printer.print_expr(expr2) == "a + b * c"


def test_printer_vector_literal_and_component():
    v2 = ty.VectorType(ty.UINT, 2)
    lit = ast.VectorLiteral(v2, [ast.IntLiteral(1, ty.UINT), ast.IntLiteral(2, ty.UINT)])
    text = printer.print_expr(ast.VectorComponent(lit, 1))
    assert text == "(uint2)(1U, 2U).y"


def test_printer_struct_and_union_definitions():
    s = ty.StructType("S", (ty.FieldDecl("a", ty.CHAR), ty.FieldDecl("b", ty.SHORT)))
    u = ty.UnionType("U", (ty.FieldDecl("a", ty.UINT), ty.FieldDecl("b", s)))
    program = ast.Program(structs=[s, u], functions=[
        ast.FunctionDecl("entry", ty.VOID, [], ast.Block([]), is_kernel=True)
    ])
    text = printer.print_program(program)
    assert "struct S {" in text and "union U {" in text
    assert "char a;" in text


def test_printer_barrier_for_loop_and_comma():
    loop = ast.ForStmt(
        ast.DeclStmt("i", ty.INT, ast.IntLiteral(0)),
        ast.BinaryOp("<", ast.var("i"), ast.IntLiteral(3)),
        ast.AssignStmt(ast.var("i"), ast.IntLiteral(1), "+="),
        ast.Block([ast.BarrierStmt()]),
    )
    text = printer.print_stmt(loop)
    assert "for (int i = 0; i < 3; i += 1)" in text
    assert "barrier(CLK_LOCAL_MEM_FENCE);" in text
    comma = ast.BinaryOp(",", ast.var("x"), ast.IntLiteral(1))
    assert printer.print_expr(comma) == "x, 1"


def test_printer_marks_emi_blocks_and_atomic_sections():
    emi = ast.IfStmt(ast.IntLiteral(0), ast.Block([]), emi_marker=3)
    assert "EMI block 3" in printer.print_stmt(emi)
    section = ast.IfStmt(ast.IntLiteral(1), ast.Block([]), atomic_section=True)
    assert "atomic section" in printer.print_stmt(section)


def test_printer_literal_suffixes():
    assert printer.print_expr(ast.IntLiteral(1, ty.ULONG)) == "1UL"
    assert printer.print_expr(ast.IntLiteral(1, ty.UINT)) == "1U"
    assert printer.print_expr(ast.IntLiteral(1, ty.LONG)) == "1L"
    assert printer.print_expr(ast.IntLiteral(1, ty.INT)) == "1"


def test_printer_pointer_operations():
    expr = ast.Deref(ast.var("p"))
    assert printer.print_expr(expr) == "*p"
    addr = ast.AddressOf(ast.FieldAccess(ast.var("p"), "a", arrow=True))
    assert printer.print_expr(addr) == "&p->a"
