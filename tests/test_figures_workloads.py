"""Tests for the Figure 1/2 bug exemplars and the Table 2 mini-workloads."""

import pytest

from repro.compiler import compile_program
from repro.platforms import get_configuration
from repro.runtime.device import Device, run_program
from repro.runtime.errors import DataRaceError
from repro.runtime.scheduler import ScheduleOrder
from repro.testing.figures import FIGURE_EXPECTATIONS, figure_program
from repro.testing.outcomes import Outcome, classify_exception
from repro.workloads import WORKLOADS, get_workload, race_free_workloads, table2_rows


# ---------------------------------------------------------------------------
# Figure exemplars
# ---------------------------------------------------------------------------


def test_there_are_twelve_exemplars_covering_both_figures():
    figures = [e.figure for e in FIGURE_EXPECTATIONS]
    assert len(figures) == 12
    assert sum(f.startswith("1") for f in figures) == 6
    assert sum(f.startswith("2") for f in figures) == 6
    with pytest.raises(KeyError):
        figure_program("3z")


@pytest.mark.parametrize("expectation", FIGURE_EXPECTATIONS, ids=lambda e: e.figure)
def test_reference_compiler_produces_the_expected_correct_value(expectation):
    program = expectation.builder()
    for optimisations in (False, True):
        result = compile_program(program, optimisations=optimisations).run()
        if expectation.correct_value is not None:
            assert result.outputs["out"][0] == expectation.correct_value


@pytest.mark.parametrize("expectation", FIGURE_EXPECTATIONS, ids=lambda e: e.figure)
def test_affected_configurations_reproduce_the_reported_defect(expectation):
    program = expectation.builder()
    reference = compile_program(program, optimisations=False).run()
    correct = reference.outputs["out"][0]
    for config_id, opt in expectation.affected:
        for optimisations in ([opt] if opt is not None else [False, True]):
            config = get_configuration(config_id)
            try:
                buggy = compile_program(program, config=config,
                                        optimisations=optimisations).run()
            except Exception as error:  # noqa: BLE001 - classified below
                outcome = classify_exception(error)
                expected = {"build_failure": Outcome.BUILD_FAILURE,
                            "timeout": Outcome.TIMEOUT,
                            "crash": Outcome.RUNTIME_CRASH}[expectation.defect_class]
                assert outcome is expected
                continue
            assert expectation.defect_class == "wrong_code"
            assert buggy.outputs["out"][0] != correct
            if expectation.buggy_value is not None:
                assert buggy.outputs["out"][0] == expectation.buggy_value


def test_figure_2c_also_crashes_on_configs_14_and_15_without_optimisations():
    program = figure_program("2c")
    for config_id in (14, 15):
        with pytest.raises(Exception) as err:
            compile_program(program, config=get_configuration(config_id),
                            optimisations=False).run()
        assert classify_exception(err.value) is Outcome.RUNTIME_CRASH


# ---------------------------------------------------------------------------
# Workloads (Table 2)
# ---------------------------------------------------------------------------


def test_table2_has_ten_benchmarks_with_paper_metadata():
    rows = table2_rows()
    assert len(rows) == 10
    assert {row["suite"] for row in rows} == {"Parboil", "Rodinia"}
    spmv = next(row for row in rows if row["benchmark"] == "spmv")
    assert spmv["kernel LoC (paper)"] == 32
    assert spmv["deliberate race"] == "yes"


def test_workload_lookup():
    assert get_workload("bfs").suite == "Parboil"
    with pytest.raises(KeyError):
        get_workload("nonexistent")
    assert len(race_free_workloads()) == 8
    assert {w.name for w in WORKLOADS} - {w.name for w in race_free_workloads()} == {
        "spmv", "myocyte"
    }


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_workloads_run_and_produce_output(workload):
    program = workload.program()
    baseline = run_program(program).outputs
    assert any(baseline.values()), "every workload must produce some output"


@pytest.mark.parametrize("workload", race_free_workloads(), ids=lambda w: w.name)
def test_race_free_workloads_are_deterministic_across_schedules(workload):
    program = workload.program()
    baseline = run_program(program).outputs
    again = run_program(program, schedule_order=ScheduleOrder.REVERSED).outputs
    assert baseline == again


def test_racy_workloads_can_change_results_under_reordering():
    """The myocyte race is observable: reversing the schedule changes the
    integration results, which is exactly why the paper had to abandon EMI
    testing on the original benchmark (section 2.4)."""
    program = get_workload("myocyte").program()
    baseline = run_program(program).outputs
    reordered = run_program(program, schedule_order=ScheduleOrder.REVERSED).outputs
    assert baseline != reordered


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_workload_optimisation_does_not_change_results(workload):
    program = workload.program()
    assert compile_program(program, optimisations=True).run().outputs == \
        compile_program(program, optimisations=False).run().outputs


def test_race_detector_reproduces_the_papers_spmv_and_myocyte_findings():
    for name in ("spmv", "myocyte"):
        with pytest.raises(DataRaceError):
            run_program(get_workload(name).program(), check_races=True)
    for workload in race_free_workloads():
        result = run_program(workload.program(), check_races=True)
        assert result.race_reports == [], workload.name


def test_race_reports_identify_the_racy_location():
    device = Device(check_races=True, throw_on_race=False)
    result = device.run(get_workload("spmv").program())
    assert any("checksum" in report for report in result.race_reports)


def test_bfs_computes_correct_levels():
    result = run_program(get_workload("bfs").program())
    # Node 0 is the source; nodes 1 and 2 are one hop away; node 7 unreachable
    # from 0 within the graph encoded in the workload... levels must be
    # non-decreasing along the BFS frontier and the source must be 0.
    levels = result.outputs["out"]
    assert levels[0] == 0
    assert levels[1] == 1 and levels[2] == 1
    assert max(levels) <= 999


def test_pathfinder_costs_are_monotone():
    result = run_program(get_workload("pathfinder").program())
    # Dynamic-programming path costs after 5 rows must be at least the cost of
    # a single cell and bounded by 5 * max cell cost.
    assert all(0 <= v <= 5 * 9 for v in result.outputs["out"])


def test_hotspot_writes_new_temperature_buffer():
    result = run_program(get_workload("hotspot").program())
    assert result.outputs["new_temperature"] == [int(v) for v in result.outputs["out"]]
