"""End-to-end integration tests exercising the whole stack the way the
benchmark harnesses and examples do, at a very small scale."""

from repro.emi import generate_variants
from repro.generator import Mode, generate_kernel
from repro.generator.options import GeneratorOptions
from repro.platforms import all_configurations, configurations_above_threshold, get_configuration
from repro.testing.campaign import (
    BenchmarkEmiResult,
    generate_emi_bases,
    run_clsmith_campaign,
    run_emi_campaign,
    worst_code,
)
from repro.testing.differential import DifferentialHarness
from repro.testing.emi_harness import EmiHarness
from repro.testing.outcomes import Outcome
from repro.testing.reliability import ReliabilityClassifier
from repro.emi.injector import inject_emi_blocks
from repro.compiler import compile_program
from repro.workloads import race_free_workloads

_FAST = GeneratorOptions(min_total_threads=4, max_total_threads=12, max_group_size=4,
                         max_statements=5)


def test_mini_differential_campaign_finds_defects_in_unreliable_configs():
    """A small CLsmith campaign must show more failures for a below-threshold
    configuration (Altera FPGA) than for a reliable one (GTX Titan)."""
    configs = [get_configuration(1), get_configuration(3), get_configuration(21)]
    result = run_clsmith_campaign(configs, kernels_per_mode=3, modes=(Mode.BASIC,),
                                  options=_FAST, max_steps=300_000)
    reliable = result.cell(Mode.BASIC, "config1", True)
    unreliable = result.cell(Mode.BASIC, "config21", True)
    assert unreliable.failure_fraction >= reliable.failure_fraction


def test_mini_reliability_run_is_consistent_with_expectations():
    configs = [get_configuration(i) for i in (1, 21)]
    report = ReliabilityClassifier(configs, kernels_per_mode=2, modes=(Mode.BASIC,),
                                   options=_FAST, max_steps=300_000).classify()
    classification = report.classification()
    assert classification[1] is True and classification[21] is False


def test_mini_emi_campaign_runs_for_above_threshold_configs():
    configs = [get_configuration(1)]
    result = run_emi_campaign(configs, n_bases=1, variants_per_base=4,
                              optimisation_levels=(True,), options=_FAST,
                              max_steps=300_000)
    assert result.n_bases == 1
    row = result.row("config1", True)
    assert sum(row.values()) >= 1


def test_emi_over_a_workload_matches_table3_cell_semantics():
    workload = race_free_workloads()[0]
    program = workload.program()
    expected = compile_program(program).run()
    harness = EmiHarness(max_steps=500_000)
    codes = []
    for substitutions in (False, True):
        injected = inject_emi_blocks(program, seed=1, n_blocks=1, substitutions=substitutions)
        outcome = harness.compare_expected(injected, expected, None, True)
        codes.append("ok" if outcome is Outcome.PASS else "w")
    grid = BenchmarkEmiResult()
    grid.set_cell(workload.name, "reference", worst_code(codes))
    assert grid.cell(workload.name, "reference") == "ok"


def test_full_stack_differential_over_every_configuration_on_one_kernel():
    kernel = generate_kernel(Mode.ALL, seed=123, options=_FAST)
    harness = DifferentialHarness(list(all_configurations()), max_steps=400_000)
    result = harness.run(kernel)
    assert len(result.records) == 2 * 21
    outcomes = {record.outcome for record in result.records}
    assert Outcome.PASS in outcomes
    # The reliable configurations must dominate the majority vote.
    assert result.majority_size >= len(configurations_above_threshold())
