"""Chaos property suite for the fault-tolerant campaign runtime.

These tests pin the contract documented in ORCHESTRATION.md "Fault
tolerance", using the deterministic fault-injection layer
(:mod:`repro.orchestration.faults`) so every "crash" is reproducible:

* **transparency**: a campaign whose workers are killed, raise, or hang
  mid-job (transient faults) completes with byte-identical tables,
  reductions, buckets and reports to a fault-free serial run;
* **quarantine**: a poison job (faults on every attempt) exhausts its
  bounded retries and is quarantined deterministically — same records, in
  submission order, on every backend and every run — while the rest of the
  campaign is unaffected;
* **durability**: torn store writes (host died mid-append) are repaired on
  reopen and the campaign resumes byte-identically; ``durable=True``
  fsyncs every append; a crash mid-``compact()`` never leaves the store
  unrecoverable;
* **shutdown**: an exception (or KeyboardInterrupt) mid-campaign
  hard-terminates the workers instead of leaking or hanging on join;
* **degradation**: a pool that cannot host workers at all falls back to
  in-parent execution and still completes.
"""

import json
import os

import pytest

from repro.generator.options import GeneratorOptions, Mode
from repro.orchestration import (
    FAULT_EXCEPTION,
    FAULT_HANG,
    FAULT_KILL,
    FaultPlan,
    FaultSpec,
    SupervisionConfig,
    WorkerPool,
)
from repro.orchestration.faults import TornStoreWrite, WorkerFault
from repro.orchestration.jobs import CLSMITH_DIFFERENTIAL, CampaignJob
from repro.reduction.corpus import clean_config, wrong_code_config
from repro.testing.campaign import run_clsmith_campaign
from repro.triage.store import (
    CampaignStore,
    decode_job_result,
    encode_job_result,
    job_identity,
)

_FAST = GeneratorOptions(min_total_threads=4, max_total_threads=12,
                         max_group_size=4, max_statements=5)

#: Campaign-level options, matching tests/test_triage_store.py: rich enough
#: that the wrong-code corpus config produces anomalies to reduce + triage.
_CAMPAIGN_OPTIONS = GeneratorOptions(
    min_total_threads=4, max_total_threads=12, max_group_size=4,
    max_statements=8, max_expr_depth=2,
)

#: Fast supervision for tests: no backoff sleeps, generous deadline.
_SUP = SupervisionConfig(max_attempts=3, lease_timeout=60.0, backoff=0.0)


def _diff_job(seed: int) -> CampaignJob:
    return CampaignJob(
        kind=CLSMITH_DIFFERENTIAL, seed=seed, mode=Mode.BASIC.value,
        config_ids=(1, None), optimisation_levels=(False,),
        options=_FAST, max_steps=300_000,
    )


_CAMPAIGN = dict(
    kernels_per_mode=2, modes=(Mode.BASIC,), options=_CAMPAIGN_OPTIONS,
    auto_triage=True, reduce_budget=200,
)


def _configs():
    return [clean_config(911), clean_config(912), wrong_code_config()]


# ---------------------------------------------------------------------------
# FaultPlan semantics
# ---------------------------------------------------------------------------


def test_fault_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor-strike", job_index=0)


def test_fault_plan_rejects_duplicate_job_indices():
    with pytest.raises(ValueError, match="duplicate fault spec"):
        FaultPlan(specs=(
            FaultSpec(kind=FAULT_EXCEPTION, job_index=1),
            FaultSpec(kind=FAULT_KILL, job_index=1),
        ))


def test_fault_plan_attempt_windows():
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_EXCEPTION, job_index=0, attempts=2),
        FaultSpec(kind=FAULT_KILL, job_index=1, attempts=None),  # poison
    ))
    assert plan.fault_for(0, 1) == FAULT_EXCEPTION
    assert plan.fault_for(0, 2) == FAULT_EXCEPTION
    assert plan.fault_for(0, 3) is None        # transient: heals on retry 3
    assert plan.fault_for(1, 99) == FAULT_KILL  # persistent: never heals
    assert plan.fault_for(2, 1) is None


def test_scattered_plan_is_deterministic():
    a = FaultPlan.scattered(seed=7, n_jobs=50, kinds=(FAULT_EXCEPTION, FAULT_KILL))
    b = FaultPlan.scattered(seed=7, n_jobs=50, kinds=(FAULT_EXCEPTION, FAULT_KILL))
    assert a == b
    assert a.specs  # a 50-job window at period 3 hits something
    assert a != FaultPlan.scattered(seed=8, n_jobs=50,
                                    kinds=(FAULT_EXCEPTION, FAULT_KILL))


# ---------------------------------------------------------------------------
# Supervised pool: transient faults are transparent
# ---------------------------------------------------------------------------


def test_transient_faults_heal_with_identical_results():
    """Kill, exception and hang faults on first attempts: every job still
    completes, results match a fault-free serial run, nothing quarantined."""
    jobs = [_diff_job(seed) for seed in range(5)]
    with WorkerPool(1) as pool:
        reference = pool.run(jobs)
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_KILL, job_index=0),
        FaultSpec(kind=FAULT_EXCEPTION, job_index=2),
        FaultSpec(kind=FAULT_HANG, job_index=3),
    ), hang_seconds=30.0)
    chaos_sup = SupervisionConfig(max_attempts=3, lease_timeout=1.5, backoff=0.0)
    with WorkerPool(2, fault_plan=plan, supervision=chaos_sup) as pool:
        survived = pool.run(jobs)
        assert pool.quarantined == []
    assert [r.counts for r in survived] == [r.counts for r in reference]
    assert all(r.fault is None for r in survived)


def test_poison_job_is_quarantined_identically_on_both_backends():
    jobs = [_diff_job(seed) for seed in range(4)]
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_EXCEPTION, job_index=2, attempts=None),
    ))
    outcomes = []
    for parallelism in (1, 2):
        with WorkerPool(parallelism, fault_plan=plan, supervision=_SUP) as pool:
            results = pool.run(jobs)
            outcomes.append((results, list(pool.quarantined)))
    for results, quarantined in outcomes:
        [(job, fault)] = quarantined
        assert job.seed == jobs[2].seed
        assert fault.kind == "exception"
        assert fault.attempts == _SUP.max_attempts
        assert results[2].fault == fault
        assert results[2].accepted is False and results[2].counts == {}
        # The healthy jobs are untouched.
        assert all(results[i].fault is None for i in (0, 1, 3))
    # Byte-for-byte the same observation, serial and supervised.
    assert outcomes[0][1] == outcomes[1][1]


def test_persistent_kill_is_observed_as_worker_death():
    jobs = [_diff_job(seed) for seed in range(3)]
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_KILL, job_index=1, attempts=None),
    ))
    with WorkerPool(2, fault_plan=plan, supervision=_SUP) as pool:
        results = pool.run(jobs)
        [(job, fault)] = pool.quarantined
    assert fault.kind == "worker-death"
    assert fault.attempts == _SUP.max_attempts
    assert results[1].fault == fault
    # A second identical run observes the identical fault record.
    with WorkerPool(2, fault_plan=plan, supervision=_SUP) as pool:
        pool.run(jobs)
        assert pool.quarantined == [(job, fault)]


def test_job_indices_are_global_across_run_calls():
    """The fault plan keys on jobs-submitted-so-far, so a fault aimed at
    index 3 hits the second run() call's second job."""
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_EXCEPTION, job_index=3, attempts=None),
    ))
    with WorkerPool(1, fault_plan=plan, supervision=_SUP) as pool:
        first = pool.run([_diff_job(0), _diff_job(1)])   # indices 0, 1
        second = pool.run([_diff_job(2), _diff_job(3)])  # indices 2, 3
        assert all(r.fault is None for r in first)
        assert second[0].fault is None
        assert second[1].fault is not None
        [(job, _)] = pool.quarantined
        assert job.seed == 3


# ---------------------------------------------------------------------------
# Campaign level: the acceptance property
# ---------------------------------------------------------------------------


def test_chaotic_process_campaign_matches_fault_free_serial():
    """The headline property: an auto-triage campaign on the process
    backend, with workers killed and jobs raising mid-run, produces
    byte-identical tables, reductions, buckets and reports to a fault-free
    serial run — and a fault-free run surfaces no quarantine section."""
    reference = run_clsmith_campaign(_configs(), **_CAMPAIGN)
    assert reference.worker_faults == []
    assert "quarantined" not in reference.render()
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_KILL, job_index=0),
        FaultSpec(kind=FAULT_EXCEPTION, job_index=1),
        FaultSpec(kind=FAULT_EXCEPTION, job_index=3),
    ))
    chaotic = run_clsmith_campaign(
        _configs(), parallelism=2, fault_plan=plan, supervision=_SUP,
        **_CAMPAIGN,
    )
    assert chaotic.worker_faults == []
    assert chaotic.table_rows() == reference.table_rows()
    assert chaotic.render() == reference.render()
    assert [s.reduced_source for s in chaotic.reductions] == [
        s.reduced_source for s in reference.reductions
    ]
    assert [b.key for b in chaotic.triage.buckets] == [
        b.key for b in reference.triage.buckets
    ]
    assert chaotic.triage.render_markdown() == reference.triage.render_markdown()


def test_campaign_quarantine_is_deterministic_and_reported():
    """A poison differential job quarantines instead of killing the
    campaign; two identical runs quarantine byte-identically, and the
    quarantine surfaces in render() and the triage report."""
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_EXCEPTION, job_index=1, attempts=None),
    ))
    runs = [
        run_clsmith_campaign(
            _configs(), parallelism=parallelism, fault_plan=plan,
            supervision=_SUP, **_CAMPAIGN,
        )
        for parallelism in (2, 2, None)
    ]
    for result in runs:
        [record] = result.worker_faults
        assert record.job_kind == CLSMITH_DIFFERENTIAL
        assert record.fault.kind == "exception"
        assert record.fault.attempts == _SUP.max_attempts
        assert record.identity  # correlates with the worker-fault store key
        assert "quarantined jobs (1):" in result.render()
        assert "## Quarantined jobs (1)" in result.triage.render_markdown()
    assert runs[0].worker_faults == runs[1].worker_faults == runs[2].worker_faults
    assert runs[0].render() == runs[1].render() == runs[2].render()
    assert (runs[0].triage.render_markdown()
            == runs[1].triage.render_markdown()
            == runs[2].triage.render_markdown())


def test_quarantine_recorded_as_worker_fault_and_heals_on_resume(tmp_path):
    """With a store, a quarantined job writes a ``worker-fault`` record and
    *no* ``job`` record, so resuming re-runs it — a transient environment
    fault heals into the byte-identical fault-free campaign."""
    path = str(tmp_path / "store.jsonl")
    reference = run_clsmith_campaign(_configs(), **_CAMPAIGN)
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_EXCEPTION, job_index=1, attempts=None),
    ))
    faulty = run_clsmith_campaign(
        _configs(), parallelism=2, resume=path, fault_plan=plan,
        supervision=_SUP, **_CAMPAIGN,
    )
    [quarantined] = faulty.worker_faults
    with CampaignStore(path) as store:
        [record] = store.worker_faults()
        assert record["fault"]["kind"] == "exception"
        assert record["fault"]["attempts"] == _SUP.max_attempts
        assert record["key"].endswith(quarantined.identity)
        assert record["seed"] == quarantined.seed
        # The poison job's identity was NOT recorded as a job result.
        assert store.lookup_job(quarantined.identity) is None
    healed = run_clsmith_campaign(_configs(), resume=path, **_CAMPAIGN)
    assert healed.worker_faults == []
    assert healed.render() == reference.render()
    assert healed.triage.render_markdown() == reference.triage.render_markdown()


# ---------------------------------------------------------------------------
# Store durability: torn writes, fsync, compaction crash
# ---------------------------------------------------------------------------


def test_torn_write_crashes_campaign_and_resume_is_byte_identical(tmp_path):
    full_path = str(tmp_path / "full.jsonl")
    torn_path = str(tmp_path / "torn.jsonl")
    full = run_clsmith_campaign(_configs(), resume=full_path, **_CAMPAIGN)
    with pytest.raises(TornStoreWrite):
        run_clsmith_campaign(
            _configs(), resume=torn_path,
            fault_plan=FaultPlan(torn_writes=(3,)), **_CAMPAIGN,
        )
    # The torn file really is damaged: its last line is half a record.
    raw = open(torn_path, "rb").read()
    assert raw and not raw.endswith(b"\n")
    resumed = run_clsmith_campaign(_configs(), resume=torn_path, **_CAMPAIGN)
    assert resumed.render() == full.render()
    assert resumed.table_rows() == full.table_rows()
    assert resumed.triage.render_markdown() == full.triage.render_markdown()
    # The repaired, resumed store replays to the same records as the
    # uninterrupted one.
    with CampaignStore(torn_path) as store, CampaignStore(full_path) as ref:
        assert (
            sorted((r["kind"], r["key"]) for r in store.records())
            == sorted((r["kind"], r["key"]) for r in ref.records())
        )


def test_durable_store_fsyncs_every_append(tmp_path, monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1])
    with CampaignStore(str(tmp_path / "lazy.jsonl")) as store:
        store.record_once("campaign", "k1", {"meta": {}})
    assert synced == []
    with CampaignStore(str(tmp_path / "durable.jsonl"), durable=True) as store:
        store.record_once("campaign", "k1", {"meta": {}})
        store.record_once("campaign", "k2", {"meta": {}})
    assert len(synced) == 2


def test_process_campaign_defaults_store_to_durable(tmp_path):
    small = dict(kernels_per_mode=1, modes=(Mode.BASIC,), options=_FAST)
    store = CampaignStore(str(tmp_path / "store.jsonl"))
    assert store.durable is None
    run_clsmith_campaign(_configs(), parallelism=2, resume=store, **small)
    assert store.durable is True
    store.close()

    explicit = CampaignStore(str(tmp_path / "explicit.jsonl"), durable=False)
    run_clsmith_campaign(_configs(), parallelism=2, resume=explicit, **small)
    assert explicit.durable is False  # an explicit choice is never overridden
    explicit.close()

    serial = CampaignStore(str(tmp_path / "serial.jsonl"))
    run_clsmith_campaign(_configs(), resume=serial, **small)
    assert serial.durable is False  # serial backend keeps the cheap default
    serial.close()


def test_crash_mid_compact_never_loses_the_store(tmp_path, monkeypatch):
    """compact() goes through a temp file + atomic rename: dying on the
    rename leaves the original store intact and fully loadable."""
    path = str(tmp_path / "store.jsonl")
    with CampaignStore(path) as store:
        for i in range(4):
            store.record_once("campaign", f"k{i}", {"meta": {"i": i}})
    before = open(path, "rb").read()

    def exploding_replace(src, dst):
        raise OSError("host died mid-rename")

    monkeypatch.setattr(os, "replace", exploding_replace)
    store = CampaignStore(path)
    with pytest.raises(OSError, match="mid-rename"):
        store.compact()
    monkeypatch.undo()
    assert open(path, "rb").read() == before
    with CampaignStore(path) as reopened:
        assert [r["key"] for r in reopened.records("campaign")] == [
            "k0", "k1", "k2", "k3"
        ]
        # And a compaction that survives its rename still works.
        assert reopened.compact() == 0
        assert [r["key"] for r in reopened.records("campaign")] == [
            "k0", "k1", "k2", "k3"
        ]


def test_job_result_fault_round_trips_and_stays_absent_when_clean():
    import dataclasses

    with WorkerPool(1) as pool:
        [clean] = pool.run([_diff_job(0)])
    encoded = encode_job_result(clean)
    assert "fault" not in encoded  # fault-free records keep their pre-PR bytes
    assert decode_job_result(encoded).counts == clean.counts

    fault = WorkerFault(kind="deadline", attempts=3, detail="lease blown")
    poisoned = dataclasses.replace(clean, fault=fault)
    decoded = decode_job_result(encode_job_result(poisoned))
    assert decoded.fault == fault


# ---------------------------------------------------------------------------
# Shutdown and degradation
# ---------------------------------------------------------------------------


def test_exit_terminates_workers_on_exception():
    with pytest.raises(RuntimeError, match="boom"):
        with WorkerPool(2) as pool:
            pool.run([_diff_job(0)])
            procs = [handle.process for handle in pool._workers]
            assert procs and all(p.is_alive() for p in procs)
            raise RuntimeError("boom")
    assert pool._workers == []
    assert all(not p.is_alive() for p in procs)


def test_close_shuts_workers_down_gracefully():
    with WorkerPool(2) as pool:
        pool.run([_diff_job(0), _diff_job(1)])
        procs = [handle.process for handle in pool._workers]
        assert procs
    assert pool._workers == []
    assert all(not p.is_alive() for p in procs)


def test_pool_degrades_to_in_parent_execution(monkeypatch):
    """A host that cannot spawn any worker still completes the run: the
    supervisor shrinks the pool to nothing and executes leases in-parent,
    with identical results."""
    jobs = [_diff_job(seed) for seed in range(3)]
    with WorkerPool(1) as pool:
        reference = pool.run(jobs)

    def no_spawn(self):
        raise OSError("fork: resource temporarily unavailable")

    monkeypatch.setattr(WorkerPool, "_spawn_worker", no_spawn)
    with WorkerPool(2, supervision=_SUP) as pool:
        degraded = pool.run(jobs)
        assert pool._workers == []
    assert [r.counts for r in degraded] == [r.counts for r in reference]
    assert pool.quarantined == []


def test_degraded_pool_still_quarantines_poison_jobs(monkeypatch):
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_EXCEPTION, job_index=1, attempts=None),
    ))
    monkeypatch.setattr(
        WorkerPool, "_spawn_worker",
        lambda self: (_ for _ in ()).throw(OSError("no processes")),
    )
    with WorkerPool(2, fault_plan=plan, supervision=_SUP) as pool:
        results = pool.run([_diff_job(seed) for seed in range(3)])
        [(job, fault)] = pool.quarantined
    assert job.seed == 1
    assert fault.kind == "exception" and fault.attempts == _SUP.max_attempts
    assert results[1].fault == fault
    assert results[0].fault is None and results[2].fault is None
