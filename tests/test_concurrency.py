"""Tests for work-group scheduling, barriers, atomics, divergence and the
Oclgrind-style race detector."""

import pytest

from repro.kernel_lang import ast, types as ty
from repro.runtime.device import Device, run_program
from repro.runtime.errors import BarrierDivergenceError, DataRaceError
from repro.runtime.scheduler import ScheduleOrder


def _program(statements, buffers, params, launch):
    kernel = ast.FunctionDecl("entry", ty.VOID, params, ast.Block(statements), is_kernel=True)
    return ast.Program(functions=[kernel], buffers=buffers, launch=launch)


def _out_param():
    return ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))


def _shared_param(name, space=ty.GLOBAL, element=ty.UINT):
    return ast.ParamDecl(name, ty.PointerType(element, space))


# ---------------------------------------------------------------------------
# Atomics
# ---------------------------------------------------------------------------


def test_atomic_inc_each_thread_gets_distinct_ticket():
    program = _program(
        [
            ast.DeclStmt("ticket", ty.UINT,
                         ast.Call("atomic_inc",
                                  [ast.AddressOf(ast.IndexAccess(ast.VarRef("counter"),
                                                                 ast.IntLiteral(0)))])),
            ast.out_write(ast.VarRef("ticket")),
        ],
        [ast.BufferSpec("out", ty.ULONG, 4, is_output=True),
         ast.BufferSpec("counter", ty.UINT, 1, init="zero", is_output=True)],
        [_out_param(), _shared_param("counter")],
        ast.LaunchSpec((4, 1, 1), (4, 1, 1)),
    )
    result = run_program(program)
    assert sorted(result.outputs["out"]) == [0, 1, 2, 3]
    assert result.outputs["counter"] == [4]


def test_atomic_reduction_is_schedule_independent():
    program = _program(
        [
            ast.ExprStmt(ast.Call("atomic_add",
                                  [ast.AddressOf(ast.IndexAccess(ast.VarRef("acc"),
                                                                 ast.IntLiteral(0))),
                                   ast.IntLiteral(5, ty.UINT)])),
            ast.out_write(ast.IntLiteral(0)),
        ],
        [ast.BufferSpec("out", ty.ULONG, 6, is_output=True),
         ast.BufferSpec("acc", ty.UINT, 1, init="zero", is_output=True)],
        [_out_param(), _shared_param("acc")],
        ast.LaunchSpec((6, 1, 1), (6, 1, 1)),
    )
    results = [
        run_program(program, schedule_order=order, schedule_seed=seed).outputs["acc"]
        for order, seed in [(ScheduleOrder.ROUND_ROBIN, 0), (ScheduleOrder.REVERSED, 0),
                            (ScheduleOrder.RANDOM, 1), (ScheduleOrder.RANDOM, 99)]
    ]
    assert all(r == [30] for r in results)


def test_atomic_cmpxchg_and_xchg():
    program = _program(
        [
            ast.ExprStmt(ast.Call("atomic_cmpxchg",
                                  [ast.AddressOf(ast.IndexAccess(ast.VarRef("acc"),
                                                                 ast.IntLiteral(0))),
                                   ast.IntLiteral(0, ty.UINT), ast.IntLiteral(9, ty.UINT)])),
            ast.out_write(ast.IntLiteral(0)),
        ],
        [ast.BufferSpec("out", ty.ULONG, 2, is_output=True),
         ast.BufferSpec("acc", ty.UINT, 1, init="zero", is_output=True)],
        [_out_param(), _shared_param("acc")],
        ast.LaunchSpec((2, 1, 1), (2, 1, 1)),
    )
    # Only the first compare-exchange succeeds; the value stays 9.
    assert run_program(program).outputs["acc"] == [9]


# ---------------------------------------------------------------------------
# Barriers
# ---------------------------------------------------------------------------


def _barrier_exchange_program():
    """Each thread writes its id into shared memory, barriers, then reads the
    neighbour's slot -- only correct if the barrier really synchronises."""
    w = 4
    neighbour = ast.BinaryOp("%", ast.BinaryOp("+", ast.Cast(ty.INT, ast.local_linear_id()),
                                               ast.IntLiteral(1)),
                             ast.IntLiteral(w))
    return _program(
        [
            ast.AssignStmt(ast.IndexAccess(ast.VarRef("buf"), ast.local_linear_id()),
                           ast.Cast(ty.UINT, ast.local_linear_id())),
            ast.BarrierStmt(),
            ast.out_write(ast.IndexAccess(ast.VarRef("buf"), neighbour)),
        ],
        [ast.BufferSpec("out", ty.ULONG, w, is_output=True),
         ast.BufferSpec("buf", ty.UINT, w, address_space=ty.LOCAL, init="zero")],
        [_out_param(), _shared_param("buf", ty.LOCAL)],
        ast.LaunchSpec((w, 1, 1), (w, 1, 1)),
    )


def test_barrier_allows_neighbour_exchange():
    result = run_program(_barrier_exchange_program())
    assert result.outputs["out"] == [1, 2, 3, 0]


def test_barrier_exchange_is_schedule_independent():
    program = _barrier_exchange_program()
    baseline = run_program(program).outputs
    for order in (ScheduleOrder.REVERSED, ScheduleOrder.RANDOM):
        assert run_program(program, schedule_order=order, schedule_seed=3).outputs == baseline


def test_barrier_divergence_is_detected():
    divergent = ast.IfStmt(
        ast.BinaryOp("==", ast.local_linear_id(), ast.IntLiteral(0)),
        ast.Block([ast.BarrierStmt()]),
    )
    program = _program(
        [divergent, ast.out_write(ast.IntLiteral(0))],
        [ast.BufferSpec("out", ty.ULONG, 2, is_output=True)],
        [_out_param()],
        ast.LaunchSpec((2, 1, 1), (2, 1, 1)),
    )
    with pytest.raises(BarrierDivergenceError):
        run_program(program)


def test_threads_at_different_barriers_is_divergence():
    body = [
        ast.IfStmt(
            ast.BinaryOp("==", ast.local_linear_id(), ast.IntLiteral(0)),
            ast.Block([ast.BarrierStmt()]),
            ast.Block([ast.BarrierStmt()]),
        ),
        ast.out_write(ast.IntLiteral(0)),
    ]
    program = _program(
        body,
        [ast.BufferSpec("out", ty.ULONG, 2, is_output=True)],
        [_out_param()],
        ast.LaunchSpec((2, 1, 1), (2, 1, 1)),
    )
    with pytest.raises(BarrierDivergenceError):
        run_program(program)


def test_no_inter_group_barrier_requirement():
    """Barriers only synchronise within a group: two groups run independently."""
    program = _program(
        [ast.BarrierStmt(), ast.out_write(ast.group_linear_id())],
        [ast.BufferSpec("out", ty.ULONG, 4, is_output=True)],
        [_out_param()],
        ast.LaunchSpec((4, 1, 1), (2, 1, 1)),
    )
    assert run_program(program).outputs["out"] == [0, 0, 1, 1]


# ---------------------------------------------------------------------------
# Race detection (paper section 3.1 definition)
# ---------------------------------------------------------------------------


def _racy_program(use_barrier: bool, atomic: bool = False):
    """All threads write shared location 0; racy unless synchronised."""
    if atomic:
        write = ast.ExprStmt(ast.Call("atomic_add",
                                      [ast.AddressOf(ast.IndexAccess(ast.VarRef("buf"),
                                                                     ast.IntLiteral(0))),
                                       ast.IntLiteral(1, ty.UINT)]))
    else:
        write = ast.AssignStmt(ast.IndexAccess(ast.VarRef("buf"), ast.local_linear_id()),
                               ast.IntLiteral(1, ty.UINT))
    read_other = ast.out_write(ast.IndexAccess(ast.VarRef("buf"), ast.IntLiteral(0)))
    statements = [write]
    if use_barrier:
        statements.append(ast.BarrierStmt())
    statements.append(read_other)
    return _program(
        statements,
        [ast.BufferSpec("out", ty.ULONG, 4, is_output=True),
         ast.BufferSpec("buf", ty.UINT, 4, address_space=ty.LOCAL, init="zero")],
        [_out_param(), _shared_param("buf", ty.LOCAL)],
        ast.LaunchSpec((4, 1, 1), (4, 1, 1)),
    )


def test_unsynchronised_conflicting_accesses_race():
    with pytest.raises(DataRaceError):
        run_program(_racy_program(use_barrier=False), check_races=True)


def test_barrier_separated_accesses_do_not_race():
    result = run_program(_racy_program(use_barrier=True), check_races=True)
    assert result.race_reports == []


def test_atomic_accesses_within_group_do_not_race():
    program = _racy_program(use_barrier=True, atomic=True)
    result = run_program(program, check_races=True)
    assert result.race_reports == []


def test_inter_group_conflicts_are_races_even_with_atomics_on_one_side():
    """The paper's definition treats any cross-group conflicting access pair
    as a race (no inter-group consistency guarantees in OpenCL 1.x)."""
    program = _program(
        [
            ast.AssignStmt(ast.IndexAccess(ast.VarRef("shared"), ast.IntLiteral(0)),
                           ast.Cast(ty.UINT, ast.global_linear_id())),
            ast.out_write(ast.IntLiteral(0)),
        ],
        [ast.BufferSpec("out", ty.ULONG, 4, is_output=True),
         ast.BufferSpec("shared", ty.UINT, 1, init="zero")],
        [_out_param(), _shared_param("shared")],
        ast.LaunchSpec((4, 1, 1), (2, 1, 1)),
    )
    with pytest.raises(DataRaceError):
        run_program(program, check_races=True)


def test_race_detector_collecting_mode_reports_without_throwing():
    device = Device(check_races=True, throw_on_race=False)
    result = device.run(_racy_program(use_barrier=False))
    assert result.race_reports, "expected at least one race report"
    assert "data race" in result.race_reports[0]


def test_distinct_locations_do_not_race():
    program = _program(
        [
            ast.AssignStmt(ast.IndexAccess(ast.VarRef("buf"), ast.local_linear_id()),
                           ast.IntLiteral(1, ty.UINT)),
            ast.out_write(ast.IndexAccess(ast.VarRef("buf"), ast.local_linear_id())),
        ],
        [ast.BufferSpec("out", ty.ULONG, 4, is_output=True),
         ast.BufferSpec("buf", ty.UINT, 4, address_space=ty.LOCAL, init="zero")],
        [_out_param(), _shared_param("buf", ty.LOCAL)],
        ast.LaunchSpec((4, 1, 1), (4, 1, 1)),
    )
    assert run_program(program, check_races=True).race_reports == []
