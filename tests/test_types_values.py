"""Unit and property tests for the type system and the value model."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel_lang import types as ty
from repro.kernel_lang import values as vals


# ---------------------------------------------------------------------------
# Scalar types
# ---------------------------------------------------------------------------


def test_scalar_widths_follow_opencl():
    assert ty.CHAR.bits == 8 and ty.CHAR.signed
    assert ty.UCHAR.bits == 8 and not ty.UCHAR.signed
    assert ty.INT.bits == 32 and ty.INT.sizeof() == 4
    assert ty.ULONG.bits == 64 and ty.ULONG.max_value == 2**64 - 1
    assert ty.LONG.min_value == -(2**63)


def test_scalar_lookup_by_name():
    assert ty.scalar_by_name("uint") is ty.UINT
    assert ty.scalar_by_name("size_t") is ty.SIZE_T
    with pytest.raises(KeyError):
        ty.scalar_by_name("float")


@given(st.integers(min_value=-(2**70), max_value=2**70))
def test_wrap_is_idempotent_and_in_range(value):
    for t in ty.ALL_SCALAR_TYPES:
        wrapped = t.wrap(value)
        assert t.contains(wrapped)
        assert t.wrap(wrapped) == wrapped


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_encode_decode_roundtrip(value):
    for t in ty.ALL_SCALAR_TYPES:
        wrapped = t.wrap(value)
        assert t.decode(t.encode(wrapped)) == wrapped


def test_two_complement_wrap_examples():
    assert ty.CHAR.wrap(200) == -56
    assert ty.UCHAR.wrap(-1) == 255
    assert ty.INT.wrap(2**31) == -(2**31)
    assert ty.UINT.wrap(-1) == 0xFFFFFFFF


def test_signed_unsigned_variants():
    assert ty.CHAR.unsigned_variant is ty.UCHAR
    assert ty.ULONG.signed_variant is ty.LONG


def test_common_scalar_type_promotes_to_int():
    assert ty.common_scalar_type(ty.CHAR, ty.SHORT) == ty.INT
    assert ty.common_scalar_type(ty.INT, ty.UINT) == ty.UINT
    assert ty.common_scalar_type(ty.LONG, ty.INT) == ty.LONG
    assert ty.common_scalar_type(ty.ULONG, ty.INT) == ty.ULONG


# ---------------------------------------------------------------------------
# Vector, struct, union, array and pointer types
# ---------------------------------------------------------------------------


def test_vector_type_spelling_and_size():
    v = ty.VectorType(ty.INT, 4)
    assert v.spelling() == "int4"
    assert v.sizeof() == 16
    with pytest.raises(ValueError):
        ty.VectorType(ty.INT, 5)


def test_struct_layout_uses_natural_alignment():
    s = ty.StructType("S", (ty.FieldDecl("a", ty.CHAR), ty.FieldDecl("b", ty.SHORT)))
    assert s.layout() == [("a", 0), ("b", 2)]
    assert s.sizeof() == 4
    assert s.alignof() == 2


def test_struct_field_lookup():
    s = ty.StructType("S", (ty.FieldDecl("x", ty.INT),))
    assert s.field("x").type is ty.INT
    assert s.has_field("x") and not s.has_field("y")
    with pytest.raises(KeyError):
        s.field("y")


def test_union_size_is_largest_member():
    inner = ty.StructType("S", (ty.FieldDecl("c", ty.SHORT), ty.FieldDecl("d", ty.LONG)))
    u = ty.UnionType("U", (ty.FieldDecl("a", ty.UINT), ty.FieldDecl("b", inner)))
    assert u.sizeof() == inner.sizeof()
    assert u.alignof() == 8


def test_array_type_nesting_and_spelling():
    arr = ty.ArrayType(ty.ArrayType(ty.ULONG, 3), 9)
    assert arr.sizeof() == 9 * 3 * 8
    assert arr.spelling() == "ulong[9][3]"
    assert arr.base_element() is ty.ULONG


def test_pointer_type_spelling_includes_address_space():
    p = ty.PointerType(ty.ULONG, ty.GLOBAL)
    assert "global" in p.spelling()
    assert p.sizeof() == 8


def test_assignment_compatibility_rules():
    assert ty.types_compatible_for_assignment(ty.INT, ty.CHAR)
    v4 = ty.VectorType(ty.INT, 4)
    assert ty.types_compatible_for_assignment(v4, v4)
    assert not ty.types_compatible_for_assignment(v4, ty.VectorType(ty.UINT, 4))
    assert not ty.types_compatible_for_assignment(v4, ty.INT)


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


def test_scalar_value_wrap_and_cast():
    v = vals.ScalarValue.wrap(ty.UCHAR, 300)
    assert v.value == 44
    assert v.cast(ty.CHAR).value == 44
    assert vals.ScalarValue.wrap(ty.INT, -1).cast(ty.UINT).value == 0xFFFFFFFF


def test_scalar_value_out_of_range_rejected():
    with pytest.raises(vals.KernelValueError):
        vals.ScalarValue(ty.CHAR, 1000)


def test_vector_value_components():
    v4 = ty.VectorType(ty.UINT, 4)
    v = vals.VectorValue(v4, [1, 2, 3, 4])
    assert v.component(2).value == 3
    assert v.with_component(0, 9).elements == [9, 2, 3, 4]
    assert vals.VectorValue.splat(v4, 7).elements == [7, 7, 7, 7]


def test_struct_value_zero_and_copy_independence():
    s = ty.StructType("S", (ty.FieldDecl("a", ty.INT), ty.FieldDecl("b", ty.SHORT)))
    original = vals.StructValue.zero(s)
    copy = original.copy()
    copy.set("a", vals.scalar(ty.INT, 5))
    assert original.get("a").value == 0
    assert copy.get("a").value == 5


def test_union_reinterpretation_through_bytes():
    inner = ty.StructType("S", (ty.FieldDecl("c", ty.SHORT), ty.FieldDecl("d", ty.LONG)))
    u_type = ty.UnionType("U", (ty.FieldDecl("a", ty.UINT), ty.FieldDecl("b", inner)))
    u = vals.UnionValue.zero(u_type)
    u.set("a", vals.scalar(ty.UINT, 0x00010002))
    # Reading the struct member reinterprets the same bytes.
    b = u.get("b")
    assert b.get("c").value == 0x0002
    assert u.get("a").value == 0x00010002


def test_union_partial_write_keeps_other_bytes():
    inner = ty.StructType("S", (ty.FieldDecl("c", ty.SHORT), ty.FieldDecl("d", ty.LONG)))
    u_type = ty.UnionType("U", (ty.FieldDecl("a", ty.UINT), ty.FieldDecl("b", inner)))
    u = vals.UnionValue(u_type, bytearray(b"\xff" * u_type.sizeof()))
    u.set("a", vals.scalar(ty.UINT, 1))
    assert u.get("a").value == 1
    # Bytes beyond the written member are untouched.
    assert u.storage[4] == 0xFF


def test_array_value_roundtrip_and_encode():
    arr_type = ty.ArrayType(ty.USHORT, 3)
    arr = vals.ArrayValue(arr_type, [vals.scalar(ty.USHORT, v) for v in (1, 2, 3)])
    decoded = vals.decode_value(arr_type, vals.encode_value(arr))
    assert [e.value for e in decoded.elements] == [1, 2, 3]


@given(st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=4, max_size=4))
def test_struct_encode_decode_roundtrip(values):
    s = ty.StructType(
        "S",
        (ty.FieldDecl("a", ty.USHORT), ty.FieldDecl("b", ty.USHORT),
         ty.FieldDecl("c", ty.USHORT), ty.FieldDecl("d", ty.USHORT)),
    )
    sv = vals.StructValue(s, {
        name: vals.scalar(ty.USHORT, v) for name, v in zip("abcd", values)
    })
    decoded = vals.decode_value(s, vals.encode_value(sv))
    assert all(decoded.get(n).value == v for n, v in zip("abcd", values))


def test_zero_value_for_every_kind():
    s = ty.StructType("S", (ty.FieldDecl("a", ty.INT),))
    for t in (ty.INT, ty.VectorType(ty.INT, 2), s, ty.ArrayType(ty.INT, 3),
              ty.PointerType(ty.INT)):
        z = vals.zero_value(t)
        assert z is not None
    assert vals.zero_value(ty.PointerType(ty.INT)).is_null


def test_values_equal_compares_structurally():
    assert vals.values_equal(vals.scalar(ty.INT, 3), vals.scalar(ty.INT, 3))
    assert not vals.values_equal(vals.scalar(ty.INT, 3), vals.scalar(ty.INT, 4))
    v2 = ty.VectorType(ty.INT, 2)
    assert vals.values_equal(vals.VectorValue(v2, [1, 2]), vals.VectorValue(v2, [1, 2]))
