"""Engine-vs-engine differential tests.

The compile-to-closures backend (``"compiled"``) and the exec-based JIT
(``"jit"``) must be observationally indistinguishable from the tree-walking
reference interpreter (``"reference"``): same outputs, same final step
counts, same race reports, same outcome classification for timeout / UB /
crash results -- including the exact ``ExecutionTimeout`` payload -- under
every schedule order and bug-model configuration.  These tests apply the
paper's own methodology -- differential testing over a generated corpus --
to the repository's three execution engines.
"""

import pytest

from repro.compiler import compile_program
from repro.generator import generate_kernel
from repro.generator.options import GeneratorOptions, Mode
from repro.kernel_lang import ast, types as ty
from repro.kernel_lang.semantics import UBKind
from repro.orchestration.cache import ResultCache, cached_run
from repro.platforms import get_configuration
from repro.platforms.calibration import execution_cache_key
from repro.runtime.device import Device, KernelResult, run_program
from repro.runtime.engine import (
    DEFAULT_ENGINE,
    ExecutionEngine,
    ReferenceEngine,
    available_engines,
    get_engine,
)
from repro.runtime.errors import (
    DataRaceError,
    ExecutionTimeout,
    UndefinedBehaviourError,
)
from repro.runtime.interpreter import ThreadContext
from repro.runtime.scheduler import ScheduleOrder
from repro.testing.campaign import run_clsmith_campaign
from repro.testing.differential import DifferentialHarness

ENGINES = ("reference", "compiled", "jit")
FAST_ENGINES = ("compiled", "jit")

#: Small kernels keep the 50-seed corpus fast without losing coverage.
CORPUS_OPTIONS = GeneratorOptions(
    min_total_threads=4, max_total_threads=24, max_group_size=8, max_statements=8
)


def _observe(program, **kwargs):
    """Everything observable about one execution, exceptions included."""
    try:
        result = run_program(program, **kwargs)
    except Exception as exc:  # noqa: BLE001 - classification is the point
        kind = getattr(exc, "kind", None)
        steps = getattr(exc, "steps", None)
        return ("raise", type(exc).__name__, kind, steps)
    return (
        "ok",
        result.outputs,
        result.steps,
        tuple(result.race_reports),
        result.result_hash(),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_engine_registry_lists_all_engines():
    assert "reference" in available_engines()
    assert "compiled" in available_engines()
    assert "jit" in available_engines()
    assert DEFAULT_ENGINE == "reference"


def test_get_engine_resolves_names_and_instances():
    reference = get_engine("reference")
    assert reference.name == "reference"
    assert isinstance(reference, ExecutionEngine)
    # Instances pass through; names resolve to shared singletons.
    assert get_engine(reference) is reference
    assert get_engine("reference") is reference
    assert get_engine(None).name == DEFAULT_ENGINE
    custom = ReferenceEngine()
    assert get_engine(custom) is custom


def test_get_engine_unknown_name_fails_loudly():
    with pytest.raises(KeyError, match="unknown execution engine"):
        get_engine("bytecode-vm")


# ---------------------------------------------------------------------------
# The engine differential property test (the tentpole's acceptance gate)
# ---------------------------------------------------------------------------


def test_engines_agree_on_generated_corpus():
    """50-seed corpus x opt levels x every engine: byte-identical results.

    ``steps`` equality is deliberately part of the contract: the fast
    engines must tick the shared budget at the same AST points, otherwise
    timeout classification could diverge between engines.
    """
    modes = list(Mode)
    for seed in range(50):
        mode = modes[seed % len(modes)]
        base = generate_kernel(mode, seed, options=CORPUS_OPTIONS)
        for optimisations in (False, True):
            program = compile_program(base, optimisations=optimisations).program
            reference = _observe(program, engine="reference")
            for engine in FAST_ENGINES:
                observed = _observe(program, engine=engine)
                assert reference == observed, (
                    f"{engine} disagrees with reference on mode={mode} "
                    f"seed={seed} opt={optimisations}"
                )


def test_engines_agree_under_comma_defect_and_schedule_orders():
    for seed in range(10):
        program = generate_kernel(Mode.ALL, seed, options=CORPUS_OPTIONS)
        for comma in (False, True):
            for order in ScheduleOrder:
                kwargs = dict(
                    schedule_order=order, schedule_seed=seed, comma_yields_zero=comma
                )
                reference = _observe(program, engine="reference", **kwargs)
                for engine in FAST_ENGINES:
                    assert reference == _observe(program, engine=engine, **kwargs)


def test_engines_agree_on_timeout_classification_and_payload():
    """Timeouts classify identically *and* carry identical step payloads.

    The reference walker increments one step at a time, so the first budget
    crossing it can observe is exactly ``max_steps + 1``; the fast engines
    batch adjacent ticks but must report the same first-crossing value
    (this pins the historically-documented one-step divergence as resolved).
    """
    for seed in range(8):
        program = generate_kernel(Mode.BASIC, seed, options=CORPUS_OPTIONS)
        reference = _observe(program, engine="reference", max_steps=40)
        assert reference[0] == "raise" and reference[1] == "ExecutionTimeout"
        for engine in FAST_ENGINES:
            assert _observe(program, engine=engine, max_steps=40) == reference
        for engine in ENGINES:
            with pytest.raises(ExecutionTimeout) as excinfo:
                run_program(program, engine=engine, max_steps=40)
            assert excinfo.value.steps == 41


# ---------------------------------------------------------------------------
# Undefined behaviour and race parity
# ---------------------------------------------------------------------------


def _single_thread_program(statements):
    kernel = ast.FunctionDecl(
        "entry",
        ty.VOID,
        [ast.ParamDecl("out", ty.PointerType(ty.ULONG, ty.GLOBAL))],
        ast.Block(statements),
        is_kernel=True,
    )
    return ast.Program(
        functions=[kernel],
        buffers=[ast.BufferSpec("out", ty.ULONG, 1, is_output=True)],
        launch=ast.LaunchSpec((1, 1, 1), (1, 1, 1)),
    )


@pytest.mark.parametrize(
    "statements, kind",
    [
        (
            [ast.out_write(ast.binop("/", ast.lit(1), ast.lit(0)))],
            UBKind.DIVISION_BY_ZERO,
        ),
        (
            [ast.out_write(ast.binop("+", ast.lit(2**31 - 1), ast.lit(1)))],
            UBKind.SIGNED_OVERFLOW,
        ),
        (
            [ast.out_write(ast.binop("<<", ast.lit(1), ast.lit(99)))],
            UBKind.SHIFT_OUT_OF_RANGE,
        ),
        (
            [ast.out_write(ast.call("clamp", ast.lit(1), ast.lit(5), ast.lit(2)))],
            UBKind.BUILTIN_UNDEFINED,
        ),
        (
            [
                ast.DeclStmt("a", ty.ArrayType(ty.INT, 2), ast.InitList([ast.lit(1)])),
                ast.out_write(ast.IndexAccess(ast.var("a"), ast.lit(7))),
            ],
            UBKind.OUT_OF_BOUNDS,
        ),
        (
            [ast.out_write(ast.var("nonexistent"))],
            UBKind.UNINITIALISED_READ,
        ),
    ],
)
def test_engines_agree_on_ub_kind(statements, kind):
    program = _single_thread_program([s.clone() for s in statements])
    observations = {}
    for engine in ENGINES:
        with pytest.raises(UndefinedBehaviourError) as excinfo:
            run_program(program, engine=engine)
        observations[engine] = excinfo.value.kind
    assert all(observed == kind for observed in observations.values()), observations


def _racy_program():
    """Every thread writes acc[0] without synchronisation."""
    kernel = ast.FunctionDecl(
        "entry",
        ty.VOID,
        [ast.ParamDecl("acc", ty.PointerType(ty.UINT, ty.GLOBAL))],
        ast.Block(
            [
                ast.AssignStmt(
                    ast.IndexAccess(ast.var("acc"), ast.lit(0)),
                    ast.global_linear_id(),
                )
            ]
        ),
        is_kernel=True,
    )
    return ast.Program(
        functions=[kernel],
        buffers=[ast.BufferSpec("acc", ty.UINT, 1, is_output=True)],
        launch=ast.LaunchSpec((4, 1, 1), (4, 1, 1)),
    )


def test_engines_agree_on_race_reports():
    program = _racy_program()
    collected = {
        engine: _observe(
            program, engine=engine, check_races=True, throw_on_race=False
        )
        for engine in ENGINES
    }
    for engine in FAST_ENGINES:
        assert collected[engine] == collected["reference"]
    assert collected["reference"][0] == "ok"
    assert collected["reference"][3], "expected at least one race report"

    for engine in ENGINES:
        with pytest.raises(DataRaceError):
            run_program(program, engine=engine, check_races=True, throw_on_race=True)


# ---------------------------------------------------------------------------
# Scheduler-order invariance (per engine)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("mode", [Mode.BARRIER, Mode.ATOMIC_REDUCTION, Mode.ALL])
def test_schedule_order_invariance_per_engine(engine, mode):
    """Race-free kernels must hash identically under every interleaving."""
    for seed in range(4):
        program = generate_kernel(mode, seed, options=CORPUS_OPTIONS)
        hashes = {
            order: run_program(
                program, engine=engine, schedule_order=order, schedule_seed=3
            ).result_hash()
            for order in ScheduleOrder
        }
        assert len(set(hashes.values())) == 1, (
            f"{engine} results vary across schedule orders for seed {seed}: {hashes}"
        )


# ---------------------------------------------------------------------------
# Harness- and campaign-level agreement
# ---------------------------------------------------------------------------


def _record_view(result):
    return [
        (
            record.config_name,
            record.optimisations,
            record.outcome,
            record.result.result_hash() if record.result is not None else None,
        )
        for record in result.records
    ]


def test_differential_harness_verdicts_are_engine_independent():
    configs = [None] + [get_configuration(i) for i in (1, 9, 14, 19)]
    for seed in range(6):
        program = generate_kernel(Mode.ALL, seed, options=CORPUS_OPTIONS)
        views = {}
        for engine in ENGINES:
            harness = DifferentialHarness(configs, max_steps=300_000, engine=engine)
            views[engine] = _record_view(harness.run(program))
        for engine in FAST_ENGINES:
            assert views[engine] == views["reference"]


def test_execution_cache_key_includes_engine():
    program = generate_kernel(Mode.BASIC, 0, options=CORPUS_OPTIONS)
    reference_key = execution_cache_key(program, {}, 1000, "reference")
    compiled_key = execution_cache_key(program, {}, 1000, "compiled")
    assert reference_key != compiled_key


def test_shared_cache_never_crosses_engines():
    program = generate_kernel(Mode.BASIC, 1, options=CORPUS_OPTIONS)
    compiled = compile_program(program, optimisations=True)
    cache = ResultCache()
    first = cached_run(cache, compiled, 300_000, "reference")
    second = cached_run(cache, compiled, 300_000, "compiled")
    assert first == second
    # Two distinct entries: the compiled lookup must miss, not reuse the
    # reference execution.
    assert cache.stats.misses == 2 and cache.stats.hits == 0 and len(cache) == 2
    assert cached_run(cache, compiled, 300_000, "compiled") == second
    assert cache.stats.hits == 1


def test_campaign_tables_engine_independent_and_parallel_safe():
    configs = [get_configuration(i) for i in (1, 9, 19)]
    campaign = dict(
        kernels_per_mode=2,
        modes=(Mode.BASIC, Mode.BARRIER),
        options=CORPUS_OPTIONS,
        max_steps=300_000,
        seed=7,
    )
    reference = run_clsmith_campaign(configs, engine="reference", **campaign)
    for engine in FAST_ENGINES:
        fast = run_clsmith_campaign(configs, engine=engine, **campaign)
        assert fast.table_rows() == reference.table_rows()

    parallel = run_clsmith_campaign(
        configs, engine="jit", parallelism=2, **campaign
    )
    assert parallel.table_rows() == reference.table_rows()


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------


def test_kernel_result_is_unhashable():
    result = KernelResult(outputs={"out": [1]}, steps=3)
    with pytest.raises(TypeError):
        hash(result)
    with pytest.raises(TypeError):
        {result}


def test_thread_context_linear_ids_are_precomputed_attributes():
    context = ThreadContext(
        global_id=(5, 1, 0),
        local_id=(1, 1, 0),
        group_id=(1, 0, 0),
        global_size=(8, 2, 1),
        local_size=(4, 2, 1),
    )
    # Plain attributes (precomputed), not properties.
    assert "global_linear_id" in vars(context)
    assert context.num_groups == (2, 1, 1)
    assert context.global_linear_id == 1 * 8 + 5
    assert context.local_linear_id == 1 * 4 + 1
    assert context.group_linear_id == 1


def test_device_accepts_engine_instances():
    program = generate_kernel(Mode.BASIC, 3, options=CORPUS_OPTIONS)
    device = Device(engine=ReferenceEngine())
    assert device.run(program) == run_program(program, engine="compiled")
