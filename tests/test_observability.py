"""Property suite for the campaign telemetry substrate (OBSERVABILITY.md).

The contract under test:

* **determinism**: a campaign run with a :class:`TelemetryCollector` (with
  or without a trace sink) produces byte-identical tables, reductions,
  buckets and reports to the same campaign run without one — on the serial
  and the process backend, when resumed from a store, and under an injected
  :class:`FaultPlan`;
* **isolation**: per-job timing never leaks into the persistence layer —
  ``encode_job_result`` omits it and ``job_identity`` ignores it, so store
  bytes are identical with telemetry on or off;
* **reconciliation**: ``repro-stats`` health figures computed from the
  trace alone equal the campaign's supervisor health counters exactly;
* **always-on health**: :class:`PoolHealth` is populated on campaign
  results even with telemetry off;
* **zero-cost default**: with no ambient collector installed,
  ``current_collector()`` is ``None`` and ``maybe_span`` degrades to a
  no-op.
"""

import io
import json

import pytest

from repro.generator.options import GeneratorOptions, Mode
from repro.observability import (
    SPAN_JOB,
    MetricsRegistry,
    ProgressLine,
    TelemetryCollector,
    TraceSink,
    compute_stats,
    current_collector,
    maybe_span,
    read_trace,
    render_stats,
    use_collector,
)
from repro.observability.cli import main as stats_main
from repro.orchestration import (
    FAULT_EXCEPTION,
    FAULT_KILL,
    FaultPlan,
    FaultSpec,
    PoolHealth,
    SupervisionConfig,
    WorkerPool,
)
from repro.orchestration.jobs import (
    CLSMITH_DIFFERENTIAL,
    CampaignJob,
    execute_job,
)
from repro.reduction.corpus import clean_config, wrong_code_config
from repro.testing.campaign import run_clsmith_campaign, run_emi_campaign
from repro.triage.store import encode_job_result, job_identity

_CAMPAIGN_OPTIONS = GeneratorOptions(
    min_total_threads=4, max_total_threads=12, max_group_size=4,
    max_statements=8, max_expr_depth=2,
)

_SUP = SupervisionConfig(max_attempts=3, lease_timeout=60.0, backoff=0.0)

_CAMPAIGN = dict(
    kernels_per_mode=2, modes=(Mode.BASIC,), options=_CAMPAIGN_OPTIONS,
    auto_triage=True, reduce_budget=200,
)


def _configs():
    return [clean_config(911), clean_config(912), wrong_code_config()]


def _diff_job(seed):
    return CampaignJob(
        kind=CLSMITH_DIFFERENTIAL, seed=seed, mode=Mode.BASIC.value,
        options=_CAMPAIGN_OPTIONS,
        config_ids=(1, None), optimisation_levels=(False,),
        max_steps=300_000,
    )


def _campaign_fingerprint(result):
    return (
        result.render(),
        [s.reduced_source for s in result.reductions],
        [b.key for b in result.triage.buckets],
        result.triage.render_markdown(),
    )


# ---------------------------------------------------------------------------
# The zero-cost default and collector primitives
# ---------------------------------------------------------------------------


def test_no_ambient_collector_by_default():
    assert current_collector() is None
    # maybe_span degrades to a no-op context manager outside a collector.
    with maybe_span(SPAN_JOB, name="nothing"):
        pass
    assert current_collector() is None


def test_use_collector_installs_and_restores():
    collector = TelemetryCollector()
    with use_collector(collector):
        assert current_collector() is collector
        inner = TelemetryCollector()
        with use_collector(inner):
            assert current_collector() is inner
        assert current_collector() is collector
    assert current_collector() is None


def test_registry_counts_and_durations():
    registry = MetricsRegistry()
    registry.count("cells", 3)
    registry.count("cells", 2)
    registry.observe("job", 0.5)
    registry.observe("job", 1.5)
    assert registry.counters["cells"] == 5
    count, total = registry.durations()["job"]
    assert count == 2 and total == pytest.approx(2.0)
    before = registry.snapshot_durations()
    registry.observe("job", 1.0)
    assert registry.durations_since(before) == {"job": (1, pytest.approx(1.0))}


def test_span_records_duration_and_event_counts():
    collector = TelemetryCollector()
    with collector.span(SPAN_JOB, name="demo"):
        pass
    count, total = collector.registry.durations()[SPAN_JOB]
    assert count == 1 and total >= 0.0
    collector.event("job-retry", job=CLSMITH_DIFFERENTIAL)
    assert collector.registry.counters["event:job-retry"] == 1


def test_trace_sink_roundtrip_and_torn_tail(tmp_path):
    path = tmp_path / "trace.jsonl"
    with TelemetryCollector(sink=TraceSink(str(path), meta={"campaign": "t"})) as col:
        with col.span("campaign", name="t"):
            col.event("job-finished", job="demo", cells=4)
    records = read_trace(str(path))
    types = [r["type"] for r in records]
    assert types[0] == "meta" and "counters" in types and "event" in types
    assert all(r["v"] == 1 for r in records)
    # A torn tail (host died mid-write) is skipped, not fatal.
    with open(path, "a") as handle:
        handle.write('{"type": "event", "kind": "trunc')
    assert read_trace(str(path)) == records


# ---------------------------------------------------------------------------
# Determinism: telemetry observes, never steers
# ---------------------------------------------------------------------------


def test_serial_campaign_byte_identical_with_telemetry(tmp_path):
    reference = run_clsmith_campaign(_configs(), seed=3, **_CAMPAIGN)
    collector = TelemetryCollector(
        sink=TraceSink(str(tmp_path / "trace.jsonl"), meta={"campaign": "clsmith"}))
    observed = run_clsmith_campaign(
        _configs(), seed=3, telemetry=collector, **_CAMPAIGN)
    collector.close()
    assert _campaign_fingerprint(observed) == _campaign_fingerprint(reference)
    assert observed.telemetry is not None
    assert observed.telemetry.jobs > 0
    assert reference.telemetry is None  # no collector, no synthesised figures


def test_process_campaign_byte_identical_with_telemetry(tmp_path):
    reference = run_clsmith_campaign(_configs(), seed=3, **_CAMPAIGN)
    collector = TelemetryCollector(
        sink=TraceSink(str(tmp_path / "trace.jsonl"), meta={"campaign": "clsmith"}))
    observed = run_clsmith_campaign(
        _configs(), seed=3, parallelism=2, telemetry=collector, **_CAMPAIGN)
    collector.close()
    assert _campaign_fingerprint(observed) == _campaign_fingerprint(reference)
    stats = compute_stats(read_trace(str(tmp_path / "trace.jsonl")))
    assert sorted(stats["workers"]) == ["w0", "w1"]


def test_emi_campaign_byte_identical_with_telemetry():
    kw = dict(n_bases=2, variants_per_base=3, options=_CAMPAIGN_OPTIONS,
              seed=5, auto_triage=True, reduce_budget=200)
    reference = run_emi_campaign(_configs(), **kw)
    observed = run_emi_campaign(
        _configs(), telemetry=TelemetryCollector(), **kw)
    assert observed.render() == reference.render()
    assert observed.triage.render_markdown() == reference.triage.render_markdown()
    assert observed.telemetry is not None


def test_telemetry_under_fault_plan_byte_identical():
    reference = run_clsmith_campaign(_configs(), **_CAMPAIGN)
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_KILL, job_index=0),
        FaultSpec(kind=FAULT_EXCEPTION, job_index=1),
    ))
    observed = run_clsmith_campaign(
        _configs(), parallelism=2, fault_plan=plan, supervision=_SUP,
        telemetry=TelemetryCollector(), **_CAMPAIGN)
    assert _campaign_fingerprint(observed) == _campaign_fingerprint(reference)
    # The chaos shows up in health, not in results.
    assert observed.health.retries >= 2
    assert observed.telemetry.health["retries"] == observed.health.retries


def test_resume_from_store_byte_identical_with_telemetry(tmp_path):
    full = run_clsmith_campaign(
        _configs(), resume=str(tmp_path / "full.jsonl"), **_CAMPAIGN)
    # Crash the observed campaign mid-run via a torn store write, then
    # resume it with telemetry: the replayed jobs must not perturb results.
    torn = str(tmp_path / "torn.jsonl")
    with pytest.raises(Exception):
        run_clsmith_campaign(
            _configs(), resume=torn,
            fault_plan=FaultPlan(torn_writes=(3,)), **_CAMPAIGN)
    resumed = run_clsmith_campaign(
        _configs(), resume=torn, telemetry=TelemetryCollector(), **_CAMPAIGN)
    assert _campaign_fingerprint(resumed) == _campaign_fingerprint(full)


def test_store_bytes_identical_with_telemetry(tmp_path):
    plain, traced = str(tmp_path / "plain.jsonl"), str(tmp_path / "traced.jsonl")
    run_clsmith_campaign(_configs(), resume=plain, **_CAMPAIGN)
    run_clsmith_campaign(
        _configs(), resume=traced, telemetry=TelemetryCollector(), **_CAMPAIGN)
    with open(plain, "rb") as a, open(traced, "rb") as b:
        assert a.read() == b.read()


# ---------------------------------------------------------------------------
# Isolation: timing never reaches identity or persistence
# ---------------------------------------------------------------------------


def test_timing_excluded_from_identity_and_encoding():
    job = _diff_job(7)
    bare = execute_job(job)
    timed = execute_job(job, timing=True)
    assert bare.timing is None
    assert timed.timing is not None and timed.timing.duration_s > 0.0
    assert job_identity(job) == job_identity(_diff_job(7))
    encoded_bare = encode_job_result(bare)
    encoded_timed = encode_job_result(timed)
    assert "timing" not in encoded_timed
    assert json.dumps(encoded_bare, sort_keys=True) == json.dumps(
        encoded_timed, sort_keys=True)


# ---------------------------------------------------------------------------
# Health counters: always on, and reconciled with the trace
# ---------------------------------------------------------------------------


def test_health_populated_without_telemetry():
    result = run_clsmith_campaign(_configs(), **_CAMPAIGN)
    assert isinstance(result.health, PoolHealth)
    assert result.health.as_dict() == {
        "retries": 0, "respawns": 0, "deadline_kills": 0,
        "in_parent_jobs": 0, "pool_shrinks": 0, "quarantines": 0,
    }


def test_pool_health_counts_retries_with_telemetry_off():
    jobs = [_diff_job(seed) for seed in range(3)]
    plan = FaultPlan(specs=(FaultSpec(kind=FAULT_EXCEPTION, job_index=1),))
    with WorkerPool(2, fault_plan=plan, supervision=_SUP) as pool:
        pool.run(jobs)
        assert pool.telemetry is None
        assert pool.health.retries == 1
        assert pool.health.quarantines == 0


def test_stats_health_reconciles_with_campaign_counters(tmp_path):
    trace = str(tmp_path / "trace.jsonl")
    plan = FaultPlan(specs=(
        FaultSpec(kind=FAULT_KILL, job_index=0),
        FaultSpec(kind=FAULT_EXCEPTION, job_index=2),
    ))
    collector = TelemetryCollector(
        sink=TraceSink(trace, meta={"campaign": "clsmith"}))
    result = run_clsmith_campaign(
        _configs(), parallelism=2, fault_plan=plan, supervision=_SUP,
        telemetry=collector, **_CAMPAIGN)
    collector.close()
    stats = compute_stats(read_trace(trace))
    assert stats["health"] == result.health.as_dict()
    assert stats["jobs"] == result.telemetry.jobs
    assert stats["cells"] == result.telemetry.cells


# ---------------------------------------------------------------------------
# repro-stats CLI
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def recorded_trace(tmp_path_factory):
    trace = str(tmp_path_factory.mktemp("trace") / "campaign.jsonl")
    collector = TelemetryCollector(
        sink=TraceSink(trace, meta={"campaign": "clsmith"}))
    run_clsmith_campaign(_configs(), seed=3, telemetry=collector, **_CAMPAIGN)
    collector.close()
    return trace


def test_render_stats_golden_sections(recorded_trace):
    stats = compute_stats(read_trace(recorded_trace))
    text = render_stats(stats)
    assert text.startswith("# repro-stats — clsmith trace")
    for heading in ("## Per-stage throughput", "## Per-engine latency",
                    "## Worker utilization", "## Supervisor health"):
        assert heading in text
    assert "clsmith-differential" in text
    assert "parent" in text  # serial campaign runs in-parent


def test_cli_text_and_json(recorded_trace, capsys):
    assert stats_main([recorded_trace]) == 0
    text = capsys.readouterr().out
    assert "# repro-stats" in text
    assert stats_main([recorded_trace, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["jobs"] > 0
    assert set(payload["health"]) == {
        "retries", "respawns", "deadline_kills", "in_parent_jobs",
        "pool_shrinks", "quarantines"}


def test_cli_missing_and_empty_trace(tmp_path, capsys):
    assert stats_main([str(tmp_path / "absent.jsonl")]) == 2
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert stats_main([str(empty)]) == 2
    capsys.readouterr()


# ---------------------------------------------------------------------------
# Live progress line
# ---------------------------------------------------------------------------


def test_progress_line_tracks_campaign(tmp_path):
    stream = io.StringIO()
    collector = TelemetryCollector()
    line = ProgressLine(stream=stream, min_interval=0.0).attach(collector)
    run_clsmith_campaign(_configs(), seed=3, telemetry=collector, **_CAMPAIGN)
    line.close()
    output = stream.getvalue()
    assert output.endswith("\n")
    final = output.rstrip("\n").rsplit("\r", 1)[-1].rstrip()
    assert final.startswith("[campaign] jobs ")
    done_over_total = final.split("jobs ", 1)[1].split(" ", 1)[0]
    done, total = done_over_total.split("/")
    assert done == total  # every scheduled job finished


def test_progress_line_counts_replayed_jobs_on_resume(tmp_path):
    store = str(tmp_path / "store.jsonl")
    run_clsmith_campaign(_configs(), resume=store, **_CAMPAIGN)
    stream = io.StringIO()
    collector = TelemetryCollector()
    line = ProgressLine(stream=stream, min_interval=0.0).attach(collector)
    run_clsmith_campaign(
        _configs(), resume=store, telemetry=collector, **_CAMPAIGN)
    line.close()
    final = stream.getvalue().rstrip("\n").rsplit("\r", 1)[-1].rstrip()
    done, total = final.split("jobs ", 1)[1].split(" ", 1)[0].split("/")
    assert done == total  # replays count toward done AND total
