#!/usr/bin/env python3
"""Replay the paper's Figure 1 and Figure 2 bug exemplars.

Each exemplar kernel is printed as OpenCL C, executed on the conformant
reference compiler, and then compiled for the configurations the paper lists
as affected -- reproducing the reported wrong values, build failures,
compile-time hangs and crashes.

Run with:  python examples/bug_gallery.py            # all twelve exemplars
           python examples/bug_gallery.py 2a 2f      # just those figures
           python examples/bug_gallery.py --reduce   # auto-reduce each bug
           python examples/bug_gallery.py --triage   # bucket + bisect them

``--reduce`` demonstrates the automated test-case reducer end to end: each
exemplar is shrunk while its defect class on the affected configuration is
preserved (and undefined behaviour stays banned), printing before/after
kernel sizes.  The exemplars are already hand-minimal -- they are the
paper's reduced figures -- so this mostly shows the reducer confirming
minimality; generated campaign kernels shrink by >90% (see REDUCTION.md).

``--triage`` goes one step further: the reduced exemplars are deduplicated
into bug buckets and each bucket is bisected to its culprit bug model,
printing the Table-3-style Markdown report of TRIAGE.md -- every figure
should come out as its own bucket attributed to the model that reproduces
that figure's defect.
"""

import argparse

from repro.compiler import compile_program
from repro.kernel_lang.printer import print_program
from repro.platforms import get_configuration
from repro.reduction import (
    MismatchPredicate,
    PredicateSpec,
    Reducer,
    ReducerConfig,
)
from repro.testing.figures import FIGURE_EXPECTATIONS
from repro.testing.outcomes import classify_exception


def replay(expectation) -> None:
    program = expectation.builder()
    print("=" * 72)
    print(f"Figure {expectation.figure}  (defect class: {expectation.defect_class})")
    print("=" * 72)
    print(print_program(program))

    reference = compile_program(program, optimisations=False).run()
    print(f"reference result: {reference.outputs['out'][0]:#x}")

    for config_id, opt in expectation.affected:
        for optimisations in ([opt] if opt is not None else [False, True]):
            config = get_configuration(config_id)
            label = f"config{config_id}{'+' if optimisations else '-'} ({config.device})"
            try:
                buggy = compile_program(program, config=config,
                                        optimisations=optimisations).run()
                print(f"  {label}: result {buggy.outputs['out'][0]:#x}")
            except Exception as error:  # noqa: BLE001 - reported to the user
                outcome = classify_exception(error)
                print(f"  {label}: {outcome.value} ({error})")
    print()


def _exemplar_predicate(expectation):
    """The first affected (configuration, opt level) that reproduces."""
    program = expectation.builder()
    for config_id, opt in expectation.affected:
        for optimisations in ([opt] if opt is not None else [True, False]):
            try:
                predicate = MismatchPredicate.from_program(
                    program, get_configuration(config_id), optimisations
                )
                return program, predicate
            except ValueError:
                continue
    return program, None


def reduce_exemplar(expectation) -> None:
    """Shrink one gallery bug while preserving its defect class."""
    program, predicate = _exemplar_predicate(expectation)
    label = f"Figure {expectation.figure:<3}"
    if predicate is None:
        print(f"{label} no reducible anomaly (defect class "
              f"{expectation.defect_class}); skipped")
        return
    result = Reducer(ReducerConfig(seed=0, max_evaluations=800)).reduce(
        program, predicate
    )
    print(f"{label} [{predicate.expected_class} on {predicate.target_label}] "
          f"nodes {result.nodes_before:>4} -> {result.nodes_after:<4} "
          f"tokens {result.tokens_before:>4} -> {result.tokens_after:<4} "
          f"({100 * result.node_reduction:.0f}% removed, "
          f"{result.evaluations} evaluations)")


def triage_gallery(expectations) -> None:
    """Reduce, bucket and bisect the exemplars; print the Markdown report."""
    from repro.triage import attribute_culprit, bucket_reductions, render_markdown

    summaries = []
    contexts = {}
    for index, expectation in enumerate(expectations):
        program, predicate = _exemplar_predicate(expectation)
        if predicate is None:
            print(f"Figure {expectation.figure}: no reducible anomaly; skipped")
            continue
        result = Reducer(ReducerConfig(seed=0, max_evaluations=400)).reduce(
            program, predicate
        )
        signature = ((predicate.target_label, predicate.expected_class),)
        summary = result.summary(
            seed=index, mode=f"figure-{expectation.figure}",
            predicate_kind="mismatch", signature=signature,
        )
        summaries.append(summary)
        contexts[id(summary)] = predicate
    buckets = bucket_reductions(summaries)
    for bucket in buckets:
        predicate = contexts[id(bucket.representative)]
        spec = PredicateSpec(
            kind="mismatch", signature=bucket.signature,
            expected_class=predicate.expected_class, target_index=0,
            target_optimisations=predicate.optimisations,
        )
        bucket.culprit = attribute_culprit(
            bucket.representative.reduced_program, spec,
            [predicate.target_config],
            optimisation_levels=(predicate.optimisations,),
        )
    print(render_markdown(buckets, title="Bug gallery triage report"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figures", nargs="*",
                        help="figure labels to replay (default: all twelve)")
    parser.add_argument("--reduce", action="store_true",
                        help="auto-reduce each exemplar instead of replaying it")
    parser.add_argument("--triage", action="store_true",
                        help="reduce, bucket and bisect the exemplars, "
                             "printing a Markdown triage report")
    args = parser.parse_args()
    wanted = set(args.figures)
    selected = [
        expectation for expectation in FIGURE_EXPECTATIONS
        if not wanted or expectation.figure in wanted
    ]
    if args.triage:
        triage_gallery(selected)
        return
    for expectation in selected:
        if args.reduce:
            reduce_exemplar(expectation)
        else:
            replay(expectation)


if __name__ == "__main__":
    main()
