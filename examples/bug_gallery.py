#!/usr/bin/env python3
"""Replay the paper's Figure 1 and Figure 2 bug exemplars.

Each exemplar kernel is printed as OpenCL C, executed on the conformant
reference compiler, and then compiled for the configurations the paper lists
as affected -- reproducing the reported wrong values, build failures,
compile-time hangs and crashes.

Run with:  python examples/bug_gallery.py            # all twelve exemplars
           python examples/bug_gallery.py 2a 2f      # just those figures
"""

import sys

from repro.compiler import compile_program
from repro.kernel_lang.printer import print_program
from repro.platforms import get_configuration
from repro.testing.figures import FIGURE_EXPECTATIONS
from repro.testing.outcomes import classify_exception


def replay(expectation) -> None:
    program = expectation.builder()
    print("=" * 72)
    print(f"Figure {expectation.figure}  (defect class: {expectation.defect_class})")
    print("=" * 72)
    print(print_program(program))

    reference = compile_program(program, optimisations=False).run()
    print(f"reference result: {reference.outputs['out'][0]:#x}")

    for config_id, opt in expectation.affected:
        for optimisations in ([opt] if opt is not None else [False, True]):
            config = get_configuration(config_id)
            label = f"config{config_id}{'+' if optimisations else '-'} ({config.device})"
            try:
                buggy = compile_program(program, config=config,
                                        optimisations=optimisations).run()
                print(f"  {label}: result {buggy.outputs['out'][0]:#x}")
            except Exception as error:  # noqa: BLE001 - reported to the user
                outcome = classify_exception(error)
                print(f"  {label}: {outcome.value} ({error})")
    print()


def main() -> None:
    wanted = set(sys.argv[1:])
    for expectation in FIGURE_EXPECTATIONS:
        if wanted and expectation.figure not in wanted:
            continue
        replay(expectation)


if __name__ == "__main__":
    main()
