#!/usr/bin/env python3
"""EMI testing of the miniature Parboil/Rodinia workloads (paper section 7.2).

For each race-free workload, dead-by-construction EMI blocks are injected
(with and without substitutions of free variables by live kernel variables),
and the instrumented kernels are run on a handful of configurations.  Any
deviation from the uninstrumented benchmark's output is a miscompilation of
code that should never have affected the result.

Run with:  python examples/emi_on_benchmarks.py
"""

from repro.compiler import compile_program
from repro.emi.injector import inject_emi_blocks
from repro.platforms import get_configuration
from repro.testing.campaign import BenchmarkEmiResult, worst_code
from repro.testing.emi_harness import EmiHarness
from repro.testing.outcomes import Outcome
from repro.workloads import race_free_workloads

CONFIG_IDS = (1, 12, 14, 17, 19)
VARIANTS = 3

_CODES = {
    Outcome.PASS: "ok",
    Outcome.WRONG_CODE: "w",
    Outcome.RUNTIME_CRASH: "c",
    Outcome.TIMEOUT: "to",
    Outcome.BUILD_FAILURE: "bf",
    Outcome.UNDEFINED_BEHAVIOUR: "ng",
}


def main() -> None:
    harness = EmiHarness()
    grid = BenchmarkEmiResult()
    names = []
    for workload in race_free_workloads():
        names.append(workload.name)
        program = workload.program()
        expected = compile_program(program).run()
        for config_id in CONFIG_IDS:
            config = get_configuration(config_id)
            codes = []
            for substitutions in (False, True):
                for seed in range(VARIANTS):
                    injected = inject_emi_blocks(program, seed=seed, n_blocks=1,
                                                 substitutions=substitutions)
                    for optimisations in (False, True):
                        outcome = harness.compare_expected(injected, expected, config,
                                                           optimisations)
                        codes.append(_CODES[outcome])
            grid.set_cell(workload.name, f"config{config_id}", worst_code(codes))

    print("Worst EMI outcome per (benchmark, configuration) -- Table 3 style")
    print(grid.render(names, [f"config{i}" for i in CONFIG_IDS]))
    print("\nlegend: w = wrong result, bf = build failure, c = crash, "
          "to = timeout, ng = cannot run, ok = all variants agree")


if __name__ == "__main__":
    main()
