#!/usr/bin/env python3
"""A miniature version of the paper's testing campaign (sections 7.1 and 7.3).

The script (1) classifies every Table 1 configuration against the reliability
threshold using a batch of generated kernels, then (2) runs a CLsmith
differential-testing campaign over the configurations that lie above the
threshold and prints a Table 4 style summary.

Run with:  python examples/fuzzing_campaign.py
Scale up with: python examples/fuzzing_campaign.py --kernels-per-mode 20 --parallelism 4
Engines produce identical tables; ``--engine reference`` trades speed for
the tree-walking baseline, ``--engine jit`` uses the exec-based JIT (every
worker keeps a prepared-program cache, so repeat launches skip lowering;
see ENGINE.md).

``--auto-reduce`` turns on campaign auto-reduction: every anomalous kernel
is shrunk to a minimal reproducer preserving its exact failure signature
(see REDUCTION.md) and the reduced kernels are printed after the table.
``--auto-triage`` additionally deduplicates the reproducers into bug
buckets, bisects each bucket to its culprit bug model or optimisation pass,
and prints the Markdown triage report (see TRIAGE.md).  ``--store FILE``
makes the campaign persistent: killed runs resume from the store with
byte-identical tables and reports.

``--trace FILE`` streams campaign telemetry (spans, per-job timings,
supervisor events) to a JSONL trace next to the store; read it back with
``repro-stats FILE``.  ``--progress`` / ``--no-progress`` control the live
single-line progress renderer (default: on when stderr is a TTY, off
otherwise so piped output stays stable).  Neither affects results — see
OBSERVABILITY.md.
"""

import argparse
import sys

from repro.generator.options import GeneratorOptions, Mode
from repro.observability import ProgressLine, TelemetryCollector, TraceSink
from repro.platforms import all_configurations, get_configuration
from repro.runtime.engine import available_engines
from repro.testing.campaign import run_clsmith_campaign
from repro.testing.reliability import ReliabilityClassifier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels-per-mode", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--parallelism", type=int, default=None,
                        help="worker processes for the campaign (default: serial)")
    parser.add_argument("--engine", choices=available_engines(), default="compiled",
                        help="execution engine for every campaign cell "
                             "(default: compiled)")
    parser.add_argument("--auto-reduce", action="store_true",
                        help="shrink every anomalous kernel to a minimal "
                             "reproducer (campaign auto-triage)")
    parser.add_argument("--reduce-budget", type=int, default=250,
                        help="candidate evaluations per reduced kernel "
                             "(anomalies from the calibrated stochastic "
                             "residue are irreducible by construction and "
                             "burn the whole budget; see REDUCTION.md)")
    parser.add_argument("--auto-triage", action="store_true",
                        help="bucket + bisect the reduced reproducers and "
                             "print a Markdown triage report (implies "
                             "--auto-reduce)")
    parser.add_argument("--store", default=None,
                        help="persist the campaign to this JSONL store; "
                             "re-running resumes it (see TRIAGE.md)")
    parser.add_argument("--trace", default=None,
                        help="stream campaign telemetry to this JSONL trace "
                             "file (read it with repro-stats; see "
                             "OBSERVABILITY.md)")
    progress = parser.add_mutually_exclusive_group()
    progress.add_argument("--progress", dest="progress", action="store_true",
                          default=sys.stderr.isatty(),
                          help="live single-line progress on stderr "
                               "(default: on for a TTY)")
    progress.add_argument("--no-progress", dest="progress",
                          action="store_false",
                          help="disable the live progress line")
    args = parser.parse_args()

    options = GeneratorOptions(min_total_threads=4, max_total_threads=24,
                               max_group_size=8, max_statements=8)

    # --- Phase 1: initial classification (Table 1) -------------------------
    print("Phase 1: classifying configurations against the reliability threshold")
    classifier = ReliabilityClassifier(
        all_configurations(),
        kernels_per_mode=max(2, args.kernels_per_mode // 2),
        modes=(Mode.BASIC, Mode.BARRIER),
        options=options,
        seed=args.seed,
    )
    report = classifier.classify()
    above = []
    for entry in report.per_config:
        marker = "above" if entry.above_threshold else "below"
        print(f"  config{entry.config.config_id:<3} {entry.config.device:<34} "
              f"failure fraction {entry.failure_fraction:.2f}  -> {marker}")
        if entry.above_threshold:
            above.append(entry.config)

    # --- Phase 2: intensive CLsmith testing (Table 4) ----------------------
    print("\nPhase 2: CLsmith differential testing on the reliable configurations")
    telemetry = None
    progress_line = None
    if args.trace or args.progress:
        sink = TraceSink(args.trace, meta={"campaign": "clsmith",
                                           "seed": args.seed}) if args.trace else None
        telemetry = TelemetryCollector(sink=sink)
        if args.progress:
            progress_line = ProgressLine().attach(telemetry)
    try:
        result = run_clsmith_campaign(
            above,
            kernels_per_mode=args.kernels_per_mode,
            modes=(Mode.BASIC, Mode.VECTOR, Mode.BARRIER, Mode.ALL),
            options=options,
            curate_on=get_configuration(1),
            seed=args.seed,
            parallelism=args.parallelism,
            engine=args.engine,
            auto_reduce=args.auto_reduce,
            reduce_budget=args.reduce_budget,
            auto_triage=args.auto_triage,
            resume=args.store,
            telemetry=telemetry,
        )
    except KeyboardInterrupt:
        # The campaign's pool tears its workers down on the way out (hard
        # terminate; nothing leaks).  With --store the partial progress is
        # already on disk: re-running the same command resumes it.
        if telemetry is not None:
            telemetry.close()  # flush whatever the trace captured so far
        print("\ninterrupted", end="", file=sys.stderr)
        if args.store:
            print(f"; progress saved — re-run with --store {args.store} "
                  "to resume", end="", file=sys.stderr)
        print(file=sys.stderr)
        sys.exit(130)
    if progress_line is not None:
        progress_line.close()
    if telemetry is not None:
        telemetry.close()
        if args.trace:
            print(f"telemetry trace written to {args.trace} "
                  "(summarise with: repro-stats " + args.trace + ")")
    print(result.render())

    total_wrong = sum(c.wrong_code for c in result.counts.values())
    print(f"\nwrong-code results found: {total_wrong}")

    if args.auto_triage:
        print(f"\nPhase 3: triage ({len(result.reductions)} reproducers "
              f"in {result.triage.n_buckets} buckets)\n")
        print(result.triage.render_markdown(title="Campaign triage report"))
    elif args.auto_reduce:
        print(f"\nPhase 3: auto-reduction ({len(result.reductions)} anomalous "
              "kernels reduced)")
        for summary in result.reductions:
            signature = ", ".join(f"{cell}:{code}" for cell, code in summary.signature)
            print(f"\n--- mode={summary.mode} seed={summary.seed} "
                  f"[{signature}]  nodes {summary.nodes_before} -> "
                  f"{summary.nodes_after} "
                  f"({100 * summary.node_reduction:.0f}% removed, "
                  f"{summary.evaluations} evaluations) ---")
            print(summary.reduced_source)


if __name__ == "__main__":
    main()
