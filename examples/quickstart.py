#!/usr/bin/env python3
"""Quickstart: generate a random OpenCL-style kernel, compile it for a few of
the paper's configurations, run it on the simulated device and compare the
results (random differential testing in a dozen lines).

Run with:  python examples/quickstart.py
Pick an execution engine with:  python examples/quickstart.py --engine jit
(``compiled`` is the default: the closure-lowering fast path produces
byte-identical results to the reference interpreter, only faster; ``jit``
emits real Python source per kernel and wins once a kernel is launched more
than once via the prepared-program cache; see ENGINE.md.)
"""

import argparse

from repro.compiler import compile_program
from repro.generator import Mode, generate_kernel
from repro.kernel_lang.printer import print_program
from repro.platforms import get_configuration
from repro.runtime.engine import available_engines
from repro.testing.differential import DifferentialHarness
from repro.testing.outcomes import Outcome


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", choices=available_engines(), default="compiled",
                        help="execution engine for every kernel run "
                             "(default: compiled)")
    args = parser.parse_args()

    # 1. Generate a deterministic, communicating kernel (BARRIER mode).
    program = generate_kernel(Mode.BARRIER, seed=2024)
    print("=== Generated kernel (OpenCL C view) ===")
    print(print_program(program))

    # 2. Compile and run it with the conformant reference compiler, with and
    #    without optimisations -- the results must agree.
    unoptimised = compile_program(program, optimisations=False).run(engine=args.engine)
    optimised = compile_program(program, optimisations=True).run(engine=args.engine)
    print(f"=== Reference execution (engine: {args.engine}) ===")
    print("out (opt-):", unoptimised.result_string()[:70], "...")
    print("results agree across optimisation levels:",
          unoptimised.outputs == optimised.outputs)

    # 3. Differential-test the kernel across a few of the paper's
    #    configurations (Table 1) and report any mismatch.
    configs = [get_configuration(i) for i in (1, 4, 9, 12, 19)]
    harness = DifferentialHarness(configs, engine=args.engine)
    verdict = harness.run(program)
    print("=== Differential testing across configurations ===")
    for record in verdict.records:
        print(f"  {record.label:<12} {record.outcome.value}")
    wrong = [r.label for r in verdict.records if r.outcome is Outcome.WRONG_CODE]
    if wrong:
        print("wrong-code results detected on:", ", ".join(wrong))
    else:
        print("all configurations agree on this kernel")


if __name__ == "__main__":
    main()
