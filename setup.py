"""Setuptools shim.

The offline environment used for this reproduction has no ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  This ``setup.py``
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` (or plain
``python setup.py develop``) fall back to the legacy editable-install path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'Many-Core Compiler Fuzzing' (PLDI 2015): CLsmith-style "
        "OpenCL kernel fuzzing, EMI testing, and a simulated many-core OpenCL substrate"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            # Automated test-case reduction: shrink an anomalous generated
            # kernel while preserving its failure signature (REDUCTION.md).
            "repro-reduce=repro.reduction.cli:main",
            # Bug triage: bucket + bisect reduced reproducers out of a
            # persistent campaign store into a Markdown report (TRIAGE.md).
            "repro-triage=repro.triage.cli:main",
            # Campaign telemetry: read a JSONL trace and print per-stage
            # throughput, latency percentiles, worker utilization and
            # supervisor health (OBSERVABILITY.md).
            "repro-stats=repro.observability.cli:main",
        ],
    },
)
